//! `INCREPAIR` and `TUPLERESOLVE` (§5): incremental repair of inserted
//! tuples against a clean database.
//!
//! Given a clean `D |= Σ` and a group insertion `ΔD`, `INCREPAIR` (Fig. 6)
//! repairs the new tuples one at a time in a configurable [`Ordering`];
//! each repaired tuple joins the growing clean repair and informs the next
//! resolution. `TUPLERESOLVE` (Fig. 7) solves the (NP-complete, Theorem
//! 5.2) *local repairing problem* greedily: it repeatedly picks the best
//! set `C` of at most `k` attributes and values `v̄` over
//! `adom ∪ {null}` such that the partially-repaired tuple satisfies every
//! CFD that falls inside the already-fixed attributes, minimizing
//! `costfix(C, v̄) = cost(t, t[C/v̄]) × vio(t[C/v̄])`. Attributes are never
//! revisited, so termination is immediate (Theorem 5.3); feasibility is
//! guaranteed because `null` satisfies everything (Example 5.1).
//!
//! One deliberate refinement: the paper's raw product makes *every*
//! violation-free change free (`cost × 0`); we rank by
//! `cost × (1 + vio)` so edit cost still separates violation-free
//! candidates. DESIGN.md records the deviation.
//!
//! Optimizations of §5.2 are implemented: LHS-indices validate candidates
//! in O(1) per CFD, and the cost-based value index enumerates candidate
//! values in increasing DL distance.

use cfd_cfd::violation::{Engine, EngineParts};
use cfd_cfd::Sigma;
use cfd_model::{ActiveDomain, AttrId, Relation, Tuple, TupleId, ValueId, NULL_ID};

use crate::cluster::ValueIndex;
use crate::cost::change_cost_ids;
use crate::distance::DistanceCache;
use crate::lhs_index::LhsIndexes;
use crate::shard::Parallelism;
use crate::RepairError;

/// Tuple-processing order for `INCREPAIR` (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// L-INCREPAIR: arbitrary linear scan, zero ordering cost.
    Linear,
    /// V-INCREPAIR: ascending number of violations `vio(t)` — accurate
    /// tuples enter the repair early and anchor later resolutions.
    Violations,
    /// W-INCREPAIR: descending total weight `wt(t)`.
    Weight,
}

/// Configuration for [`inc_repair`].
#[derive(Clone, Debug)]
pub struct IncConfig {
    /// Size of the attribute sets `TUPLERESOLVE` fixes per step. The paper
    /// reports k = 1, 2 already give good results.
    pub k: usize,
    /// Tuple-processing order.
    pub ordering: Ordering,
    /// How many nearest active-domain values to consider per attribute.
    pub candidates_per_attr: usize,
    /// Cap on candidate combinations per attribute set (the all-null
    /// fallback is always tried in addition).
    pub max_combos: usize,
    /// Restrict `TUPLERESOLVE`'s attribute-set search to the attributes of
    /// *failing* constraints (default). This prunes the search from
    /// `attr(R)` to the handful of attributes violations touch and is what
    /// makes the incremental path fast; it excludes cascade repairs that
    /// deliberately break a currently-satisfied constraint and then fix it
    /// (e.g. Example 5.1's `(CT, ST, zip) := (PHI, PA, 19014)` at k = 3 —
    /// reachable again with this set to `false`).
    pub restrict_to_failing: bool,
    /// Additive penalty per residual violation of a candidate
    /// (`costfix = cost + vio_penalty · vio(t[C/v̄])`). The paper's
    /// multiplicative `cost × vio` cannot distinguish a zero-cost "keep"
    /// that leaves conflicts from one that doesn't — any violation-free
    /// change is also free under it — so we use an additive blend;
    /// DESIGN.md records the deviation.
    pub vio_penalty: f64,
    /// Multiplier applied to the cost of a change *to null* during
    /// candidate ranking. The paper treats null as a last resort ("we pick
    /// null if the value of an attribute is unknown or uncertain"); under
    /// the raw normalized metric null is exactly as distant as any full
    /// rewrite, so without a penalty the repairer would null cells instead
    /// of applying certain fixes of equal edit distance. 2.0 makes certain
    /// values strictly preferred whenever one exists at comparable cost.
    pub null_cost_factor: f64,
    /// Worker threads for index construction and the V-INCREPAIR ordering
    /// scan. Repairs are byte-identical at every thread count; the default
    /// resolves `CFD_THREADS` under the `parallel` feature and is serial
    /// otherwise.
    pub parallelism: Parallelism,
    /// Distance-kernel override, mirroring [`crate::BatchConfig::simd`]:
    /// `None` follows the process-wide `CFD_SIMD` switch. Repairs are
    /// byte-identical either way.
    pub simd: Option<bool>,
}

impl Default for IncConfig {
    fn default() -> Self {
        IncConfig {
            k: 1,
            ordering: Ordering::Violations,
            candidates_per_attr: 6,
            max_combos: 128,
            restrict_to_failing: true,
            vio_penalty: 0.5,
            null_cost_factor: 2.0,
            parallelism: Parallelism::default(),
            simd: None,
        }
    }
}

/// Counters describing a completed incremental repair.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IncStats {
    /// Tuples processed from ΔD.
    pub processed: usize,
    /// Tuples that needed at least one value change.
    pub modified: usize,
    /// Null values introduced.
    pub nulls_introduced: usize,
    /// Total `cost(ΔD_Repr, ΔD)`.
    pub cost: f64,
}

/// Result of an incremental repair.
#[derive(Clone, Debug)]
pub struct IncOutcome {
    /// `D ⊕ ΔD_Repr`: the clean base plus the repaired insertions. Base
    /// tuples keep their ids; ΔD tuples receive fresh ids in input order.
    pub repair: Relation,
    /// Ids assigned to the ΔD tuples, aligned with the input slice.
    pub delta_ids: Vec<TupleId>,
    /// Counters.
    pub stats: IncStats,
}

/// Internal driver shared by [`inc_repair`] and
/// [`crate::subset::repair_via_incremental`]: a relation in which `pending`
/// tuples are not yet part of the clean portion.
pub(crate) struct IncState<'a> {
    sigma: &'a Sigma,
    config: IncConfig,
    /// Full storage; pending tuples hold their original (dirty) values.
    pub(crate) work: Relation,
    /// Violation engine whose group indexes cover only the *active*
    /// (already clean) tuples. Pending tuples must not count: one dirty
    /// pending tuple would otherwise smear `vio > 0` over every innocent
    /// member of its groups. The asymmetry of "who is to blame" in a
    /// pending pair is instead resolved by the processing order (clean,
    /// trusted tuples first).
    engine: Engine<'a>,
    /// LHS-indices over active tuples.
    lhs: LhsIndexes,
    /// Active domain over active tuples.
    adom: ActiveDomain,
    /// Lazily-built per-attribute nearest-value indexes.
    vidx: Vec<Option<ValueIndex>>,
    /// Memoized `dis(v, v')` over id pairs — the only place candidate
    /// pricing resolves ids back to strings.
    dcache: DistanceCache,
    pub(crate) stats: IncStats,
}

impl<'a> IncState<'a> {
    /// Build a state where `active` holds the clean portion of `work`.
    /// Indexes must only see active tuples, so pending ones are temporarily
    /// deleted from a scratch copy during index construction.
    pub(crate) fn new(
        work: Relation,
        pending: &[TupleId],
        sigma: &'a Sigma,
        config: IncConfig,
    ) -> Result<Self, RepairError> {
        assert!(
            work.schema().arity() <= 128,
            "incremental repair supports arity ≤ 128"
        );
        assert!(config.k >= 1, "k must be at least 1");
        let mut active_view = work.clone();
        for id in pending {
            active_view.delete(*id)?;
        }
        // Index only the active view (see the `engine` field docs); the
        // indexes store ids, so resolving them against the full `work` is
        // sound because the view's ids are a subset.
        let threads = config.parallelism.get();
        let engine = Engine::build_with_threads(&active_view, sigma, threads);
        let lhs = LhsIndexes::build_with(&active_view, sigma, &config.parallelism);
        let adom = ActiveDomain::of_relation(&active_view);
        let arity = work.schema().arity();
        let dcache = DistanceCache::for_pool(
            work.pool().clone(),
            config.simd.unwrap_or_else(cfd_model::simd_enabled),
        );
        Ok(IncState {
            sigma,
            config,
            work,
            engine,
            lhs,
            adom,
            vidx: vec![None; arity],
            dcache,
            stats: IncStats::default(),
        })
    }

    fn value_index(&mut self, a: AttrId) -> &ValueIndex {
        let slot = &mut self.vidx[a.index()];
        if slot.is_none() {
            *slot = Some(ValueIndex::build_in(
                &self.adom,
                a,
                self.work.pool().clone(),
            ));
        }
        slot.as_ref().expect("just built")
    }

    /// Does `t` satisfy the *entire* Σ against the active tuples?
    fn satisfies_all(&self, t: &Tuple) -> bool {
        let mut ok = true;
        self.engine.rules.for_each_fired(t, |_, r| {
            ok &= r.rhs.satisfied_by_id(t.id(r.rhs_attr));
        });
        if !ok {
            return false;
        }
        self.engine
            .variable_cfds()
            .all(|n| self.lhs.satisfies(n, t))
    }

    /// Does `t` satisfy `Σ(mask)` — every CFD whose attributes fall inside
    /// `mask` — against the active tuples?
    fn satisfies_within(&self, t: &Tuple, mask: &[bool]) -> bool {
        let mut ok = true;
        self.engine.rules.for_each_fired(t, |lhs, r| {
            if ok
                && lhs.iter().all(|a| mask[a.index()])
                && mask[r.rhs_attr.index()]
                && !r.rhs.satisfied_by_id(t.id(r.rhs_attr))
            {
                ok = false;
            }
        });
        if !ok {
            return false;
        }
        self.engine
            .variable_cfds()
            .filter(|n| n.attrs().all(|a| mask[a.index()]))
            .all(|n| self.lhs.satisfies(n, t))
    }

    /// Candidate values for attribute `a` while resolving `cur` with the
    /// attribute set `C` (as a mask). Sources, in order: the current value,
    /// values pinned by CFDs whose LHS avoids `C`, nearest active-domain
    /// values, and `null`.
    fn candidates_for(&mut self, cur: &Tuple, a: AttrId, c_mask: u128) -> Vec<ValueId> {
        let mut out: Vec<ValueId> = Vec::with_capacity(self.config.candidates_per_attr + 6);
        let push = |out: &mut Vec<ValueId>, v: ValueId| {
            if !out.contains(&v) {
                out.push(v);
            }
        };
        push(&mut out, cur.id(a));
        // Constant-rule obligations: rules firing on cur whose LHS avoids C
        // and whose RHS is exactly `a`.
        let mut pinned: Vec<ValueId> = Vec::new();
        self.engine.rules.for_each_fired(cur, |lhs, r| {
            if r.rhs_attr == a && lhs.iter().all(|x| (c_mask >> x.index()) & 1 == 0) {
                if let Some(v) = r.rhs.as_const_id() {
                    pinned.push(v);
                }
            }
        });
        for v in pinned {
            push(&mut out, v);
        }
        // Variable-CFD pins: the group value for cur's key, when the LHS
        // avoids C.
        let pins: Vec<ValueId> = self
            .engine
            .variable_cfds()
            .filter(|n| n.rhs_attr() == a && n.lhs().iter().all(|x| (c_mask >> x.index()) & 1 == 0))
            .filter_map(|n| self.lhs.pinned_id(n, cur))
            .collect();
        for v in pins {
            push(&mut out, v);
        }
        // Nearest active-domain values by DL distance.
        let probe = cur.id(a);
        let limit = self.config.candidates_per_attr;
        for (v, _) in self.value_index(a).nearest(probe, limit, false) {
            push(&mut out, v);
        }
        push(&mut out, NULL_ID);
        out
    }

    /// `TUPLERESOLVE` (Fig. 7): repair one tuple against the active portion.
    pub(crate) fn tuple_resolve(&mut self, id: TupleId, orig: &Tuple) -> Tuple {
        // Fast path: a tuple that satisfies Σ against the clean portion
        // *and* has no conflicts pending needs no work. This is the
        // overwhelmingly common case at the experiments' 1%–10% error
        // rates.
        let _ = id;
        if self.satisfies_all(orig) {
            return orig.clone();
        }
        let arity = orig.arity();
        let mut cur = orig.clone();
        // Only the attributes of *failing* constraints can participate in a
        // repair: a CFD's satisfaction depends solely on its own attributes,
        // so every attribute outside the failing set keeps its value and is
        // marked fixed up front. This prunes the attribute-set search from
        // `attr(R)` (13 here) to the handful the violations actually touch.
        let mut fixed = vec![true; arity];
        let mut suspicious = vec![!self.config.restrict_to_failing; arity];
        self.engine.rules.for_each_fired(orig, |lhs, r| {
            if !r.rhs.satisfied_by_id(orig.id(r.rhs_attr)) {
                for a in lhs {
                    suspicious[a.index()] = true;
                }
                suspicious[r.rhs_attr.index()] = true;
            }
        });
        let failing_variable: Vec<AttrId> = self
            .engine
            .variable_cfds()
            .filter(|n| !self.lhs.satisfies(n, orig))
            .flat_map(|n| n.attrs().collect::<Vec<_>>())
            .collect();
        for a in failing_variable {
            suspicious[a.index()] = true;
        }
        for (slot, sus) in fixed.iter_mut().zip(&suspicious) {
            *slot = !sus;
        }
        debug_assert!(
            fixed.iter().any(|f| !f),
            "satisfies_all failed, so some constraint must be failing"
        );
        while fixed.iter().any(|f| !f) {
            let unfixed: Vec<AttrId> = (0..arity as u16)
                .map(AttrId)
                .filter(|a| !fixed[a.index()])
                .collect();
            let k = self.config.k.min(unfixed.len());
            let mut best: Option<(Vec<AttrId>, Vec<ValueId>, f64, f64)> = None;
            for combo in combinations(&unfixed, k) {
                let c_mask: u128 = combo.iter().fold(0, |m, a| m | (1u128 << a.index()));
                // Scope mask: already-fixed attributes plus this combo.
                let mut mask = fixed.clone();
                for a in &combo {
                    mask[a.index()] = true;
                }
                let per_attr: Vec<Vec<ValueId>> = combo
                    .iter()
                    .map(|a| self.candidates_for(&cur, *a, c_mask))
                    .collect();
                // Warm the distance memo target-major before the odometer:
                // one prepared kernel per (original value, candidate list)
                // instead of a fresh per-pair DP inside `consider`. The
                // memoized numbers are bit-identical to the per-pair path,
                // so this is purely a batching speedup.
                for (a, vs) in combo.iter().zip(per_attr.iter()) {
                    self.dcache.normalized_batch(orig.id(*a), vs);
                }
                let mut tried = 0usize;
                let mut odometer = vec![0usize; k];
                'outer: loop {
                    let assignment: Vec<ValueId> = odometer
                        .iter()
                        .zip(per_attr.iter())
                        .map(|(i, vs)| vs[*i])
                        .collect();
                    self.consider(id, orig, &cur, &combo, assignment, &mask, &mut best);
                    tried += 1;
                    if tried >= self.config.max_combos {
                        break;
                    }
                    // advance odometer
                    let mut pos = 0;
                    loop {
                        odometer[pos] += 1;
                        if odometer[pos] < per_attr[pos].len() {
                            break;
                        }
                        odometer[pos] = 0;
                        pos += 1;
                        if pos == k {
                            break 'outer;
                        }
                    }
                }
                // The all-null assignment is always feasible (Example 5.1);
                // make sure it was considered even under the combo cap.
                self.consider(id, orig, &cur, &combo, vec![NULL_ID; k], &mask, &mut best);
            }
            let (combo, values, _, _) =
                best.expect("all-null assignment is always feasible, so a best fix exists");
            for (a, v) in combo.iter().zip(values) {
                if v.is_null() && !cur.id(*a).is_null() {
                    self.stats.nulls_introduced += 1;
                }
                cur.set_id(*a, v);
                fixed[a.index()] = true;
            }
        }
        cur
    }

    /// Evaluate one candidate assignment; update `best` when feasible and
    /// cheaper. Ranking is `(costfix, cost, #nulls)` for determinism.
    #[allow(clippy::too_many_arguments)] // the paper's costfix takes exactly these inputs
    fn consider(
        &mut self,
        id: TupleId,
        orig: &Tuple,
        cur: &Tuple,
        combo: &[AttrId],
        values: Vec<ValueId>,
        mask: &[bool],
        best: &mut Option<(Vec<AttrId>, Vec<ValueId>, f64, f64)>,
    ) {
        let mut cand = cur.clone();
        for (a, v) in combo.iter().zip(values.iter()) {
            cand.set_id(*a, *v);
        }
        if !self.satisfies_within(&cand, mask) {
            return;
        }
        let cost: f64 = combo
            .iter()
            .zip(values.iter())
            .map(|(a, v)| {
                let c = change_cost_ids(orig.weight(*a), orig.id(*a), *v, &mut self.dcache);
                if v.is_null() && !orig.id(*a).is_null() {
                    c * self.config.null_cost_factor
                } else {
                    c
                }
            })
            .sum();
        let vio = self.engine.vio_of(&self.work, &cand, Some(id));
        let costfix = cost + self.config.vio_penalty * vio as f64;
        let tie = cost + values.iter().filter(|v| v.is_null()).count() as f64 * 1e-6;
        match best {
            Some((_, _, bf, bt)) if (*bf, *bt) <= (costfix, tie) => {}
            _ => *best = Some((combo.to_vec(), values, costfix, tie)),
        }
    }

    /// Repair the pending tuple at `id` and activate it.
    pub(crate) fn resolve_and_activate(&mut self, id: TupleId) -> Result<(), RepairError> {
        let orig = self.work.require(id)?.to_tuple();
        let repaired = self.tuple_resolve(id, &orig);
        self.stats.processed += 1;
        // Both tuples carry ids from `work`'s pool, so price the change
        // through the cache bound to it — an owned `Tuple` has no pool of
        // its own, and value-level comparison would resolve through the
        // process-shared one.
        let mut cost = 0.0;
        for a in 0..orig.arity() as u16 {
            let a = AttrId(a);
            cost += change_cost_ids(orig.weight(a), orig.id(a), repaired.id(a), &mut self.dcache);
        }
        if cost > 0.0 || orig.attr_diff(&repaired) > 0 {
            self.stats.modified += 1;
            self.stats.cost += cost;
        }
        // Write back and activate in all index structures.
        for a in 0..repaired.arity() as u16 {
            let a = AttrId(a);
            if self.work.value_id(id, a) != Some(repaired.id(a)) {
                self.work.set_value_id(id, a, repaired.id(a))?;
            }
        }
        let stored = self.work.require(id)?.to_tuple();
        self.engine.insert(id, &stored);
        self.lhs.insert(self.sigma, &stored);
        for a in self.work.schema().attr_ids().collect::<Vec<_>>() {
            let v = stored.id(a);
            self.adom.add_id(a, v);
            if let Some(idx) = &mut self.vidx[a.index()] {
                idx.add(v);
            }
        }
        Ok(())
    }

    /// Sort pending ids according to the configured ordering.
    pub(crate) fn order_pending(&self, pending: &mut [TupleId]) {
        match self.config.ordering {
            Ordering::Linear => {}
            Ordering::Violations => {
                // vio(t) against the full database (active + pending),
                // ascending; ties broken by descending total weight so the
                // trusted side of a conflicting pending pair enters the
                // repair first and anchors its group. Keys are computed
                // per tuple against frozen state, so chunks fan out across
                // threads and concatenate to the same vector at every
                // thread count; the sort is total (ids are unique).
                let threads = self.config.parallelism.get();
                let full = Engine::build_with_threads(&self.work, self.sigma, threads);
                let key_of = |id: TupleId| {
                    let t = self.work.tuple(id).expect("pending tuple is live");
                    let wt = (t.total_weight() * 1e6) as i64;
                    (full.vio_of(&self.work, &t, Some(id)), -wt, id)
                };
                let mut keyed: Vec<(usize, i64, TupleId)> = if threads <= 1 || pending.len() < 64 {
                    pending.iter().map(|id| key_of(*id)).collect()
                } else {
                    let chunk = pending.len().div_ceil(threads);
                    // Workers share `self` read-only; arm the LHS-index
                    // tripwire so any future lazy growth from inside the
                    // fan-out fails loudly instead of leaking scheduling
                    // into group state.
                    self.lhs.freeze();
                    let keyed = std::thread::scope(|s| {
                        let handles: Vec<_> = pending
                            .chunks(chunk.max(1))
                            .map(|part| {
                                s.spawn(|| part.iter().map(|id| key_of(*id)).collect::<Vec<_>>())
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("ordering shard panicked"))
                            .collect()
                    });
                    self.lhs.thaw();
                    keyed
                };
                keyed.sort();
                for (slot, (_, _, id)) in pending.iter_mut().zip(keyed) {
                    *slot = id;
                }
            }
            Ordering::Weight => {
                let mut keyed: Vec<(f64, TupleId)> = pending
                    .iter()
                    .map(|id| {
                        let t = self.work.tuple(*id).expect("pending tuple is live");
                        (t.total_weight(), *id)
                    })
                    .collect();
                keyed.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.cmp(&b.1))
                });
                for (slot, (_, id)) in pending.iter_mut().zip(keyed) {
                    *slot = id;
                }
            }
        }
    }
}

/// Owned snapshot of an [`IncState`] with the Σ borrow severed: everything
/// a resident stream driver keeps warm between repair rounds so no index
/// is rebuilt at a window boundary. [`IncState::resume`] /
/// [`IncState::suspend`] convert between the two forms; the round-trip is
/// exact, so a resumed state repairs byte-identically to one that was
/// never suspended.
pub(crate) struct ResidentParts {
    pub(crate) work: Relation,
    pub(crate) engine: EngineParts,
    pub(crate) lhs: LhsIndexes,
    pub(crate) adom: ActiveDomain,
    pub(crate) vidx: Vec<Option<ValueIndex>>,
    pub(crate) dcache: DistanceCache,
}

impl ResidentParts {
    /// Drop a live *active* tuple from the relation and every index.
    /// Deletions never violate CFDs (§3.3), so no re-repair is needed.
    /// The active domain (and the value indexes over it) is append-only
    /// by design: values only the departed tuple contributed remain
    /// candidates, which is sound — candidates are suggestions, never
    /// obligations — and keeps removal O(indexes) instead of O(relation).
    pub(crate) fn remove_active(
        &mut self,
        sigma: &Sigma,
        id: TupleId,
    ) -> Result<Tuple, RepairError> {
        let t = self.work.require(id)?.to_tuple();
        self.engine.indexes.remove(id, &t);
        self.lhs.remove(sigma, &t);
        Ok(self.work.delete(id)?)
    }
}

impl<'a> IncState<'a> {
    /// Reconstitute a driver from suspended parts. Stats restart at zero —
    /// each resume covers one repair round; callers accumulate across
    /// rounds.
    pub(crate) fn resume(parts: ResidentParts, sigma: &'a Sigma, config: IncConfig) -> Self {
        IncState {
            sigma,
            config,
            work: parts.work,
            engine: Engine::from_parts(sigma, parts.engine),
            lhs: parts.lhs,
            adom: parts.adom,
            vidx: parts.vidx,
            dcache: parts.dcache,
            stats: IncStats::default(),
        }
    }

    /// Sever the Σ borrow, returning the owned parts plus this round's
    /// counters.
    pub(crate) fn suspend(self) -> (ResidentParts, IncStats) {
        (
            ResidentParts {
                work: self.work,
                engine: self.engine.to_parts(),
                lhs: self.lhs,
                adom: self.adom,
                vidx: self.vidx,
                dcache: self.dcache,
            },
            self.stats,
        )
    }
}

/// All subsets of `items` of size `k`, in lexicographic position order.
fn combinations(items: &[AttrId], k: usize) -> Vec<Vec<AttrId>> {
    let n = items.len();
    if k == 0 || k > n {
        return vec![];
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|i| items[*i]).collect());
        // advance
        let mut pos = k;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            if idx[pos] < n - (k - pos) {
                idx[pos] += 1;
                for j in pos + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Run `INCREPAIR` (Fig. 6): insert `delta` into the clean `d`, repairing
/// each tuple so that the result satisfies `sigma`.
///
/// `d` is assumed clean (`D |= Σ`); it is never modified — the defining
/// property of incremental repair. Deletions never violate CFDs (§3.3) and
/// need no repair, so `delta` carries insertions only.
pub fn inc_repair(
    d: &Relation,
    delta: &[Tuple],
    sigma: &Sigma,
    config: IncConfig,
) -> Result<IncOutcome, RepairError> {
    let mut work = d.clone();
    let mut pending = Vec::with_capacity(delta.len());
    for t in delta {
        pending.push(work.insert(t.clone())?);
    }
    let delta_ids = pending.clone();
    let mut state = IncState::new(work, &pending, sigma, config)?;
    state.order_pending(&mut pending);
    for id in pending {
        state.resolve_and_activate(id)?;
    }
    let outcome = IncOutcome {
        repair: state.work,
        delta_ids,
        stats: state.stats,
    };
    debug_assert!(cfd_cfd::check(&outcome.repair, sigma));
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_cfd::pattern::{PatternRow, PatternValue};
    use cfd_cfd::Cfd;
    use cfd_model::{Schema, Value};

    /// Clean Fig. 1 data (t3/t4 already fixed) with ϕ1/ϕ2.
    fn clean_fig1() -> (Relation, Sigma) {
        let schema = Schema::new(
            "order",
            &["id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip"],
        )
        .unwrap();
        let mut rel = Relation::new(schema.clone());
        for row in [
            [
                "a23",
                "H. Porter",
                "17.99",
                "215",
                "8983490",
                "Walnut",
                "PHI",
                "PA",
                "19014",
            ],
            [
                "a23",
                "H. Porter",
                "17.99",
                "610",
                "3456789",
                "Spruce",
                "PHI",
                "PA",
                "19014",
            ],
            [
                "a12",
                "J. Denver",
                "7.94",
                "212",
                "3345677",
                "Canel",
                "NYC",
                "NY",
                "10012",
            ],
            [
                "a89",
                "Snow White",
                "18.99",
                "212",
                "5674322",
                "Broad",
                "NYC",
                "NY",
                "10012",
            ],
        ] {
            rel.insert(Tuple::from_iter(row)).unwrap();
        }
        let phi1 = Cfd::new(
            "phi1",
            schema.attrs_named(&["AC", "PN"]).unwrap(),
            schema.attrs_named(&["STR", "CT", "ST"]).unwrap(),
            vec![
                PatternRow::new(
                    vec![PatternValue::constant("212"), PatternValue::Wildcard],
                    vec![
                        PatternValue::Wildcard,
                        PatternValue::constant("NYC"),
                        PatternValue::constant("NY"),
                    ],
                ),
                PatternRow::new(
                    vec![PatternValue::constant("610"), PatternValue::Wildcard],
                    vec![
                        PatternValue::Wildcard,
                        PatternValue::constant("PHI"),
                        PatternValue::constant("PA"),
                    ],
                ),
                PatternRow::new(
                    vec![PatternValue::constant("215"), PatternValue::Wildcard],
                    vec![
                        PatternValue::Wildcard,
                        PatternValue::constant("PHI"),
                        PatternValue::constant("PA"),
                    ],
                ),
            ],
        )
        .unwrap();
        let phi2 = Cfd::new(
            "phi2",
            schema.attrs_named(&["zip"]).unwrap(),
            schema.attrs_named(&["CT", "ST"]).unwrap(),
            vec![
                PatternRow::new(
                    vec![PatternValue::constant("10012")],
                    vec![PatternValue::constant("NYC"), PatternValue::constant("NY")],
                ),
                PatternRow::new(
                    vec![PatternValue::constant("19014")],
                    vec![PatternValue::constant("PHI"), PatternValue::constant("PA")],
                ),
            ],
        )
        .unwrap();
        let sigma = Sigma::normalize(schema, vec![phi1, phi2]).unwrap();
        (rel, sigma)
    }

    #[test]
    fn clean_insert_is_untouched() {
        let (rel, sigma) = clean_fig1();
        let t = Tuple::from_iter([
            "a99", "New Item", "5.00", "610", "5550000", "Pine", "PHI", "PA", "19014",
        ]);
        let out = inc_repair(&rel, std::slice::from_ref(&t), &sigma, IncConfig::default()).unwrap();
        assert_eq!(out.stats.processed, 1);
        assert_eq!(out.stats.modified, 0);
        assert_eq!(out.repair.tuple(out.delta_ids[0]).unwrap(), &t);
        assert!(cfd_cfd::check(&out.repair, &sigma));
    }

    #[test]
    fn example_1_1_t5_resolved_consistently() {
        // t5 = (215, 8983490, …, NYC, NY, 10012) conflicts with t1 via ϕ1
        // and with ϕ2 in a cycle (Example 1.1). TUPLERESOLVE must output a
        // consistent tuple; with k = 1 the CT/ST pins cannot be satisfied
        // by single-attribute changes, so nulls (or an AC/zip change) are
        // acceptable — the invariant is consistency of the result.
        let (rel, sigma) = clean_fig1();
        let t5 = Tuple::from_iter([
            "a55", "K. Oyle", "12.00", "215", "8983490", "Walnut", "NYC", "NY", "10012",
        ]);
        for k in [1, 2, 3] {
            let cfg = IncConfig {
                k,
                ..Default::default()
            };
            let out = inc_repair(&rel, std::slice::from_ref(&t5), &sigma, cfg).unwrap();
            assert!(cfd_cfd::check(&out.repair, &sigma), "k={k}");
        }
    }

    #[test]
    fn example_5_1_k3_can_fix_ct_st_zip() {
        // With k = 3, C = {CT, ST, zip} and v̄ = (PHI, PA, 19014) is a
        // feasible certain fix (Example 5.1). It should be preferred over
        // nulls when weights make CT/ST/zip cheap to change.
        let (rel, sigma) = clean_fig1();
        let mut t5 = Tuple::from_iter([
            "a55", "K. Oyle", "12.00", "215", "8983490", "Walnut", "NYC", "NY", "10012",
        ]);
        // make the conflicted attributes cheap and the others precious
        let schema = rel.schema().clone();
        for name in ["CT", "ST", "zip"] {
            t5.set_weight(schema.attr(name).unwrap(), 0.05);
        }
        for name in ["AC", "PN"] {
            t5.set_weight(schema.attr(name).unwrap(), 1.0);
        }
        let cfg = IncConfig {
            k: 3,
            max_combos: 4096,
            restrict_to_failing: false,
            ..Default::default()
        };
        let out = inc_repair(&rel, &[t5], &sigma, cfg).unwrap();
        assert!(cfd_cfd::check(&out.repair, &sigma));
        let got = out.repair.tuple(out.delta_ids[0]).unwrap();
        let ct = schema.attr("CT").unwrap();
        let st = schema.attr("ST").unwrap();
        let zip = schema.attr("zip").unwrap();
        assert_eq!(got.value(ct), Value::str("PHI"));
        assert_eq!(got.value(st), Value::str("PA"));
        assert_eq!(got.value(zip), Value::str("19014"));
        assert_eq!(out.stats.nulls_introduced, 0);
    }

    #[test]
    fn base_database_is_never_modified() {
        let (rel, sigma) = clean_fig1();
        let t5 = Tuple::from_iter([
            "a55", "K. Oyle", "12.00", "215", "8983490", "Walnut", "NYC", "NY", "10012",
        ]);
        let out = inc_repair(&rel, &[t5], &sigma, IncConfig::default()).unwrap();
        for (id, t) in rel.iter() {
            assert_eq!(out.repair.tuple(id).unwrap(), t, "base tuple {id} changed");
        }
    }

    #[test]
    fn group_insertion_later_tuples_see_earlier_repairs() {
        // Two inserts with a fresh key: the first pins the group's value,
        // the second (conflicting) must follow it.
        let schema = Schema::new("r", &["k", "v"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        rel.insert(Tuple::from_iter(["k0", "x"])).unwrap();
        let fd = Cfd::standard_fd(
            "kv",
            vec![schema.attr("k").unwrap()],
            vec![schema.attr("v").unwrap()],
        );
        let sigma = Sigma::normalize(schema.clone(), vec![fd]).unwrap();
        let d1 = Tuple::from_iter(["fresh", "alpha"]);
        let d2 = Tuple::from_iter(["fresh", "alphb"]);
        let cfg = IncConfig {
            ordering: Ordering::Linear,
            ..Default::default()
        };
        let out = inc_repair(&rel, &[d1, d2], &sigma, cfg).unwrap();
        assert!(cfd_cfd::check(&out.repair, &sigma));
        let v = schema.attr("v").unwrap();
        let v1 = out.repair.tuple(out.delta_ids[0]).unwrap().value(v).clone();
        let v2 = out.repair.tuple(out.delta_ids[1]).unwrap().value(v).clone();
        assert_eq!(v1, Value::str("alpha")); // first tuple untouched
        assert_eq!(v2, Value::str("alpha")); // second follows the pin
    }

    #[test]
    fn orderings_all_produce_consistent_repairs() {
        let (rel, sigma) = clean_fig1();
        let dirty = vec![
            Tuple::from_iter([
                "a71", "Item A", "1.00", "212", "1112222", "Canal", "PHI", "PA", "10012",
            ]),
            Tuple::from_iter([
                "a72", "Item B", "2.00", "610", "2223333", "Vine", "NYC", "PA", "19014",
            ]),
        ];
        for ordering in [Ordering::Linear, Ordering::Violations, Ordering::Weight] {
            let cfg = IncConfig {
                ordering,
                ..Default::default()
            };
            let out = inc_repair(&rel, &dirty, &sigma, cfg).unwrap();
            assert!(cfd_cfd::check(&out.repair, &sigma), "{ordering:?}");
            assert_eq!(out.stats.processed, 2, "{ordering:?}");
        }
    }

    #[test]
    fn violation_ordering_repairs_cleanest_first() {
        let schema = Schema::new("r", &["k", "v"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        rel.insert(Tuple::from_iter(["seed", "s"])).unwrap();
        let fd = Cfd::standard_fd(
            "kv",
            vec![schema.attr("k").unwrap()],
            vec![schema.attr("v").unwrap()],
        );
        let sigma = Sigma::normalize(schema.clone(), vec![fd]).unwrap();
        // d1 conflicts with two others; d2/d3 agree with each other.
        let d1 = Tuple::from_iter(["g", "zzz"]);
        let d2 = Tuple::from_iter(["g", "aaa"]);
        let d3 = Tuple::from_iter(["g", "aaa"]);
        let cfg = IncConfig {
            ordering: Ordering::Violations,
            ..Default::default()
        };
        let out = inc_repair(&rel, &[d1, d2, d3], &sigma, cfg).unwrap();
        assert!(cfd_cfd::check(&out.repair, &sigma));
        // majority value wins because the agreeing pair is processed first
        let v = schema.attr("v").unwrap();
        assert_eq!(
            out.repair.tuple(out.delta_ids[0]).unwrap().value(v),
            Value::str("aaa")
        );
    }

    #[test]
    fn combinations_enumerate_correctly() {
        let items: Vec<AttrId> = (0..4u16).map(AttrId).collect();
        assert_eq!(combinations(&items, 1).len(), 4);
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 3).len(), 4);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert!(combinations(&items, 5).is_empty());
        // elements are distinct and sorted
        for combo in combinations(&items, 2) {
            assert!(combo[0] < combo[1]);
        }
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let (rel, sigma) = clean_fig1();
        let out = inc_repair(&rel, &[], &sigma, IncConfig::default()).unwrap();
        assert_eq!(out.stats.processed, 0);
        assert_eq!(out.repair.len(), rel.len());
    }
}
