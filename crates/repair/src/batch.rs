//! `BATCHREPAIR` (§4): whole-database repair over CFDs.
//!
//! The algorithm of Fig. 4/5 of the paper, faithfully including:
//!
//! * equivalence classes with monotone target upgrades (`'_' → const →
//!   null`), which is what makes the algorithm terminate on CFDs where the
//!   FD-only repair of Bohannon et al. would oscillate (Example 4.1);
//! * `PICKNEXT`: among all (CFD, dirty tuple) pairs, pick the least-cost
//!   resolution ([`PickStrategy::GlobalBest`]), or the dependency-graph
//!   optimized variant that drains one CFD at a time in topological order
//!   ([`PickStrategy::DependencyOrdered`], the default — §7.2 reports the
//!   unoptimized picker "runs very slow");
//! * `CFD-RESOLVE` (§4.1): constant violations resolved by RHS target
//!   assignment (case 1.1) or LHS change (case 1.2); variable violations by
//!   class merging (case 2.1), LHS change on conflicting constants (case
//!   2.2), with null resolving conflicts as a last resort;
//! * `FINDV`: semantically-related candidate values drawn from the tuples
//!   agreeing with `t` on `X ∪ {A} \ {B}` (the S-set of Fig. 5, line 4);
//! * the final instantiation phase (Fig. 4 lines 9–13) assigning each
//!   still-free multi-member class its least-cost constant, looping when
//!   instantiation surfaces fresh violations.
//!
//! Violation state is tracked on a working relation holding *effective*
//! values (targets materialized as they are fixed), with the original
//! relation kept aside for cost computation.
//!
//! Parallelism: the group census and the initial `PICKNEXT` frontier are
//! built sharded by LHS-key hash range ([`crate::shard`]) under the
//! [`Parallelism`] carried in [`BatchConfig`]. The resolution loop itself
//! runs in one of two modes: sequential (the reference), or *speculative*
//! ([`crate::speculative`], `BatchConfig::speculate ≥ 1`) — shards plan
//! their next fixes concurrently against a frozen snapshot and a commit
//! phase replays the plans in the serial heap order, validating read-sets
//! and falling back to inline replanning when a plan went stale. Both
//! modes produce byte-identical repairs at every thread count and
//! speculation depth.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use cfd_cfd::violation::{detect_with_parts, ConstantRules, Engine, EngineParts, GroupIndexes};
use cfd_cfd::{CfdId, NormalCfd, Sigma};
use cfd_model::index::HashIndex;
use cfd_model::{
    AttrId, EditLog, IdKey, Relation, TupleId, TupleView, ValueId, ValuePool, NULL_ID,
};

use crate::cost::{class_assign_cost_ids, class_assign_cost_ids_batch, repair_cost};
use crate::depgraph::DepGraph;
use crate::distance::DistanceCache;
use crate::equivalence::{Cell, EqClasses, Target};
use crate::shard::{self, Candidate, GroupCensus, Parallelism};
use crate::speculative::{ReadSet, SpecLog, SpecStats};
use crate::RepairError;

/// How `PICKNEXT` chooses the next violation to resolve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PickStrategy {
    /// Faithful Fig. 5: always resolve the globally cheapest (CFD, dirty
    /// tuple) pair next. Implemented as a lazy priority heap — entries are
    /// re-verified and re-priced on pop — so each step is O(log |dirty|)
    /// amortized instead of the naive O(|dirty|) rescan. This is the
    /// default: resolving cheap-certain fixes first is what keeps wrong
    /// expensive resolutions (e.g. dragging a city to a corrupted zip's
    /// binding) from firing before the cheap correct one.
    GlobalBest,
    /// Dependency-graph optimization (§7.2): drain CFDs one at a time in
    /// topological order of the CFD dependency graph, looping until no
    /// dirty tuples remain anywhere. Faster per step but blind to cost
    /// order across CFDs; the `repair_ablations` bench quantifies the
    /// accuracy gap.
    DependencyOrdered,
}

/// How a free/free variable-CFD merge chooses its reconciliation value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergePricing {
    /// Price over the whole agreeing group: the winner is the value with
    /// the largest weighted carrier support (DESIGN.md §7 item 3). The
    /// default — immune to the pairwise snowball.
    GroupMajority,
    /// The literal two-cell reading of §4.1: compare only the two classes
    /// being merged. Kept for the `repair_ablations` benchmark, which
    /// quantifies the snowball cascades this produces.
    Pairwise,
}

/// Configuration for [`batch_repair`].
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Picker variant; defaults to the optimized one.
    pub pick: PickStrategy,
    /// How many candidate values `FINDV` examines per S-set. The paper
    /// takes the minimum over the whole S-set; capping bounds worst-case
    /// group sizes without changing behaviour on realistic data.
    pub findv_candidates: usize,
    /// Free/free merge winner selection; defaults to group majority.
    pub merge_pricing: MergePricing,
    /// Worker threads for census construction, initial `PICKNEXT`
    /// scoring, and speculative plan fan-out. Repairs are byte-identical
    /// at every thread count; the default resolves `CFD_THREADS` under
    /// the `parallel` feature and is serial otherwise.
    pub parallelism: Parallelism,
    /// Speculation depth `k` for the resolution loop ([`crate::speculative`]):
    /// each round plans up to `k` frontier entries concurrently against a
    /// frozen snapshot and commits them in the serial heap order,
    /// validating read-sets. `0` disables speculation (the sequential
    /// reference loop); any `k ≥ 1` is byte-identical to it. Only the
    /// [`PickStrategy::GlobalBest`] picker speculates. The default
    /// resolves `CFD_SPECULATE` under the `parallel` feature and is `0`
    /// otherwise.
    pub speculate: usize,
    /// Kernel selection for distance pricing: `Some(true)` forces the
    /// bit-parallel kernel, `Some(false)` the scalar reference, `None`
    /// (the default) follows the process-wide [`cfd_model::simd_enabled`]
    /// switch. Repairs are byte-identical either way — this exists so the
    /// differential suite can run both kernels in one process.
    pub simd: Option<bool>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            pick: PickStrategy::GlobalBest,
            findv_candidates: 32,
            merge_pricing: MergePricing::GroupMajority,
            parallelism: Parallelism::default(),
            speculate: shard::speculation_from_env(),
            simd: None,
        }
    }
}

impl BatchConfig {
    /// The effective kernel choice: the explicit override, or the
    /// process-wide `CFD_SIMD` resolution.
    pub(crate) fn bitparallel(&self) -> bool {
        self.simd.unwrap_or_else(cfd_model::simd_enabled)
    }
}

/// Counters describing a completed batch repair.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Resolution steps applied (each strictly increases class progress).
    pub steps: usize,
    /// Class merges (case 2.1).
    pub merges: usize,
    /// Constant target assignments (cases 1.1 / 1.2 / FINDV).
    pub consts_set: usize,
    /// Null target assignments (conflict fallbacks).
    pub nulls_set: usize,
    /// Instantiation rounds (Fig. 4 lines 9–13).
    pub instantiation_rounds: usize,
    /// Final `cost(Repr, D)` under the §3.2 model.
    pub cost: f64,
}

/// Result of a batch repair: the repaired relation plus statistics.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The repair `Repr` (same tuple ids as the input).
    pub repair: Relation,
    /// Counters and the final repair cost. Identical for serial and
    /// speculative runs — the speculative loop is byte-equivalent.
    pub stats: BatchStats,
    /// Speculation counters, present when the run used the speculative
    /// resolution loop (`BatchConfig::speculate ≥ 1` with the global-best
    /// picker). Unlike [`BatchStats`], these legitimately vary with the
    /// thread count and depth `k` — they describe the *schedule*, not the
    /// repair.
    pub speculation: Option<SpecStats>,
    /// The speculative audit trace, collected only by
    /// [`batch_repair_traced`]; `None` otherwise.
    pub trace: Option<Vec<String>>,
}

impl BatchOutcome {
    /// The repair as an id-level [`EditLog`] against the dirty input it
    /// was computed from: snapshot + this log replays to the byte-exact
    /// `repair` (see `cfd_model::snapshot` for the persisted form).
    /// `BATCHREPAIR` only rewrites cells — tuple ids are preserved — so
    /// this cannot fail for the outcome's own input.
    pub fn edit_log(&self, original: &Relation) -> Result<EditLog, cfd_model::ModelError> {
        EditLog::between(original, &self.repair)
    }
}

/// A planned resolution step.
#[derive(Clone, Debug)]
pub(crate) enum Fix {
    SetConst {
        cell: Cell,
        v: ValueId,
    },
    SetNull {
        cell: Cell,
    },
    /// Merge the classes of `a` and `b`. `winner` is the group-majority
    /// value chosen at plan time (None when both sides already agree);
    /// it is only honoured while both targets are still free.
    Merge {
        a: Cell,
        b: Cell,
        winner: Option<ValueId>,
    },
}

impl Fix {
    /// Stable one-line rendering for debug output and the speculative
    /// audit trace. `pool` is the dataset pool the fix's ids live in.
    pub(crate) fn describe(&self, pool: &ValuePool) -> String {
        match self {
            Fix::SetConst { cell, v } => {
                format!(
                    "SetConst {} {} := {}",
                    cell.tuple,
                    cell.attr,
                    pool.resolve(*v)
                )
            }
            Fix::SetNull { cell } => format!("SetNull {} {}", cell.tuple, cell.attr),
            Fix::Merge { a, b, .. } => {
                format!("Merge {} {} ~ {} {}", a.tuple, a.attr, b.tuple, b.attr)
            }
        }
    }
}

/// The kind of violation `violates` found.
pub(crate) enum Violation {
    Constant,
    Variable { partner: TupleId },
}

pub(crate) struct BatchState<'a> {
    pub(crate) sigma: &'a Sigma,
    pub(crate) orig: &'a Relation,
    pub(crate) work: Relation,
    pub(crate) eq: EqClasses,
    pub(crate) indexes: GroupIndexes,
    /// Hash-indexed constant rules for O(shapes) dirty marking.
    pub(crate) rules: ConstantRules,
    /// Subsumption-minimal variable CFD ids (see `minimal_variable_ids`).
    pub(crate) variable_ids: Vec<CfdId>,
    /// Group value census for the variable shapes (fast clean-group test).
    pub(crate) census: GroupCensus,
    pub(crate) dirty: Vec<BTreeSet<TupleId>>,
    /// `vio(t)` from the initial detection: tuples whose violation count
    /// towers over their partners' are suspects even when Σ has no
    /// constant rules (a corrupted cell conflicts with its whole group;
    /// an innocent partner only with the corrupted tuple).
    pub(crate) initial_vio: std::collections::HashMap<TupleId, usize>,
    /// Lazy priority heap for [`PickStrategy::GlobalBest`]: entries carry
    /// the last-known [`HeapKey`] and are re-verified and re-priced when
    /// popped. Seeded by the sharded frontier scoring (`seed_heap`).
    pub(crate) heap: BinaryHeap<Reverse<HeapKey>>,
    /// Memoized `dis(v, v')` over id pairs.
    pub(crate) dcache: DistanceCache,
    pub(crate) stats: BatchStats,
    /// Write stamps for speculative read-set validation; `Some` only
    /// while a speculative commit phase is live ([`crate::speculative`]).
    pub(crate) spec_log: Option<SpecLog>,
    /// Speculation counters; `Some` when the speculative loop runs.
    pub(crate) spec_stats: Option<SpecStats>,
    /// Commit/abort audit trace, collected when requested
    /// ([`batch_repair_traced`]).
    pub(crate) trace: Option<Vec<String>>,
    pub(crate) config: BatchConfig,
}

/// The total order `PICKNEXT` resolves under — [`Candidate::key`]'s
/// `(cost, value frequency, value id, CFD, tuple)` — shared by the
/// frontier merge, the lazy heap, and the speculative commit replay so
/// serial, sharded, and speculative runs pop fixes in exactly the same
/// sequence.
pub(crate) type HeapKey = (u64, u64, u32, u32, u32);

/// Map a non-negative cost to an order-preserving integer key.
pub(crate) fn cost_key(cost: f64) -> u64 {
    if cost.is_nan() {
        u64::MAX
    } else {
        cost.max(0.0).to_bits()
    }
}

/// The tie-break metadata of a planned fix: `(freq, value)` where `freq`
/// is `u64::MAX − use_count(value)` under the dataset's own pool
/// (well-corroborated constants sort first among equal costs) and
/// nulls/winnerless merges rank last. A pure function of the fix and the
/// dataset, never of scoring order or process history.
pub(crate) fn fix_meta(fix: &Fix, pool: &ValuePool) -> (u64, u32) {
    let v = match fix {
        Fix::SetConst { v, .. } => *v,
        Fix::SetNull { .. } => NULL_ID,
        Fix::Merge { winner, .. } => winner.unwrap_or(NULL_ID),
    };
    if v.is_null() {
        (u64::MAX, v.0)
    } else {
        (u64::MAX - pool.use_count(v), v.0)
    }
}

/// The S-set index view `PICKNEXT`/`CFD-RESOLVE` planning reads through.
///
/// The sequential loop drives lazy `ensure` builds straight into the main
/// state ([`PlanIndexes::Main`]) — build order is resolution order, the
/// contract. Speculative planning workers must not touch the main state
/// (group order inside a [`HashIndex`] is history-dependent and FINDV
/// truncates group walks), so they read through a frozen borrow and build
/// misses into a worker-private overlay against the snapshot
/// ([`PlanIndexes::Snapshot`]); the commit phase replays those `ensure`s
/// on the main state in merge order.
pub(crate) enum PlanIndexes<'p> {
    /// The sequential loop: lazy builds mutate the main state directly.
    Main(&'p mut GroupIndexes),
    /// A speculative planning worker: base hits read the frozen main
    /// state, misses build into the private overlay.
    Snapshot {
        base: &'p GroupIndexes,
        local: GroupIndexes,
    },
}

/// The read-mostly planning context `PICKNEXT`/`CFD-RESOLVE` run against:
/// shared references to the frozen inputs — equivalence classes included,
/// all class lookups are non-mutating — plus per-planner memo caches.
/// [`BatchState`] materializes one over its own fields for the sequential
/// loop; the sharded frontier scoring and the speculative planning phase
/// give each worker a private one (snapshot index overlay, empty distance
/// memo) over the same shared state — the caches are semantically
/// transparent, so worker plans equal serial plans bit for bit.
///
/// When `reads` is set, every lookup of *mutable* state is recorded: work
/// tuples, census groups, S-set index groups, equivalence-class roots,
/// and base-missing `ensure`s. The resulting [`ReadSet`] is what the
/// speculative commit phase validates against its write stamps.
pub(crate) struct Planner<'p> {
    orig: &'p Relation,
    work: &'p Relation,
    rules: &'p ConstantRules,
    census: &'p GroupCensus,
    initial_vio: &'p HashMap<TupleId, usize>,
    config: &'p BatchConfig,
    eq: &'p EqClasses,
    indexes: PlanIndexes<'p>,
    dcache: &'p mut DistanceCache,
    /// Read-set recorder, owned so one worker can swap a fresh set in per
    /// planned pair while keeping its index overlay warm. `None` (the
    /// sequential loop, frontier scoring) records nothing.
    reads: Option<ReadSet>,
}

/// Score one shard of the initial frontier: verify and price every dirty
/// `(CFD, tuple)` pair assigned to this shard against the frozen t=0
/// state. `eq` is the all-singleton initial class grid, shared read-only
/// across workers (class lookups never mutate); S-set indexes missing
/// from the main set build into a worker-private overlay. Returns the
/// priced candidates plus the attribute lists the overlay materialized
/// (the caller replays those `ensure`s on the main state so later lazy
/// builds are thread-count-independent).
#[allow(clippy::too_many_arguments)] // exactly the shared planning state
fn score_shard(
    sigma: &Sigma,
    orig: &Relation,
    work: &Relation,
    rules: &ConstantRules,
    census: &GroupCensus,
    indexes: &GroupIndexes,
    initial_vio: &HashMap<TupleId, usize>,
    config: &BatchConfig,
    eq: &EqClasses,
    pairs: &[(u32, u32)],
) -> (Vec<Candidate>, Vec<Vec<AttrId>>) {
    let mut dcache = DistanceCache::for_pool(orig.pool().clone(), config.bitparallel());
    let mut planner = Planner {
        orig,
        work,
        rules,
        census,
        initial_vio,
        config,
        eq,
        indexes: PlanIndexes::Snapshot {
            base: indexes,
            local: GroupIndexes::empty(),
        },
        dcache: &mut dcache,
        reads: None,
    };
    let mut out = Vec::with_capacity(pairs.len());
    for &(cfd, tid) in pairs {
        let n = sigma.get(CfdId(cfd)).clone();
        let planned = planner
            .violates(&n, TupleId(tid))
            .and_then(|v| planner.plan_fix(&n, TupleId(tid), &v));
        let cand = match planned {
            Some((fix, cost)) => {
                let (freq, value) = fix_meta(&fix, orig.pool());
                Candidate {
                    cost: cost_key(cost),
                    freq,
                    value,
                    cfd,
                    tid,
                }
            }
            // Defensive: a pair with no verified plan (impossible at t=0
            // by the violation definitions) pops last, re-verifies, and is
            // dropped — exactly what the lazy loop would do.
            None => Candidate {
                cost: u64::MAX,
                freq: u64::MAX,
                value: u32::MAX,
                cfd,
                tid,
            },
        };
        out.push(cand);
    }
    let ensured = match planner.indexes {
        PlanIndexes::Snapshot { local, .. } => local.attr_lists(),
        PlanIndexes::Main(_) => unreachable!("score_shard plans on a snapshot"),
    };
    (out, ensured)
}

impl<'a> BatchState<'a> {
    pub(crate) fn new(orig: &'a Relation, sigma: &'a Sigma, config: BatchConfig) -> Self {
        // Index contents are identical at any thread count, and `work`
        // below is an id-stable clone of `orig`, so building against the
        // original here equals building against the working copy — which
        // is what lets a resident dataset hand in prebuilt parts.
        let parts = Engine::build_with_threads(orig, sigma, config.parallelism.get()).to_parts();
        Self::new_with_parts(orig, sigma, config, parts)
    }

    pub(crate) fn new_with_parts(
        orig: &'a Relation,
        sigma: &'a Sigma,
        config: BatchConfig,
        parts: EngineParts,
    ) -> Self {
        let work = orig.clone();
        let arity = orig.schema().arity();
        // Cell grid covers the id space including tombstones; dead slots
        // simply never participate.
        let slots = orig.ids().map(|id| id.index() + 1).max().unwrap_or(0);
        let eq = EqClasses::new(slots, arity, |tid, a| {
            orig.tuple(tid).map(|t| t.weight(a)).unwrap_or(0.0)
        });
        let report = detect_with_parts(&work, sigma, &parts);
        let dirty = report
            .per_cfd
            .iter()
            .map(|ids| ids.iter().copied().collect())
            .collect();
        let initial_vio = report.per_tuple.clone();
        // Reuse the detection engine's structures instead of rebuilding:
        // the group indexes and hashed constant rules are exactly what the
        // repair loop needs.
        let EngineParts {
            indexes,
            rules,
            variable_ids,
        } = parts;
        let shapes = shard::variable_shapes(sigma);
        let census = GroupCensus::build(&work, &shapes, &config.parallelism);
        let mut state = BatchState {
            sigma,
            orig,
            work,
            eq,
            indexes,
            rules,
            variable_ids,
            census,
            dirty,
            initial_vio,
            heap: BinaryHeap::new(),
            dcache: DistanceCache::for_pool(orig.pool().clone(), config.bitparallel()),
            stats: BatchStats::default(),
            spec_log: None,
            spec_stats: None,
            trace: None,
            config,
        };
        if state.config.pick == PickStrategy::GlobalBest {
            state.seed_heap();
            if state.config.speculate >= 1 {
                state.spec_stats = Some(SpecStats::default());
            }
        }
        state
    }

    /// The planning view over this state's own fields (the sequential
    /// loop and the speculative commit phase's inline replans).
    pub(crate) fn planner(&mut self) -> Planner<'_> {
        Planner {
            orig: self.orig,
            work: &self.work,
            rules: &self.rules,
            census: &self.census,
            initial_vio: &self.initial_vio,
            config: &self.config,
            eq: &self.eq,
            indexes: PlanIndexes::Main(&mut self.indexes),
            dcache: &mut self.dcache,
            reads: None,
        }
    }

    /// Seed the `PICKNEXT` heap with the fully priced initial frontier.
    ///
    /// Dirty `(CFD, tuple)` pairs are partitioned by hashing the tuple's
    /// LHS key under the CFD's shape ([`shard::shard_of`]) into
    /// `parallelism` ranges; each range is scored by a `std::thread::scope`
    /// worker against the frozen t=0 state, and the shard frontiers merge
    /// under [`Candidate::key`]'s total order. Scoring is a pure function
    /// of relation content, so the heap starts identical at every thread
    /// count — and the resolution loop after it is sequential, making the
    /// whole repair byte-identical to a serial run.
    fn seed_heap(&mut self) {
        let pairs: Vec<(u32, u32)> = self
            .dirty
            .iter()
            .enumerate()
            .flat_map(|(i, ids)| ids.iter().map(move |id| (i as u32, id.0)))
            .collect();
        if pairs.is_empty() {
            return;
        }
        let threads = self.config.parallelism.get().min(pairs.len());
        let mut shards: Vec<Vec<(u32, u32)>> = vec![Vec::new(); threads];
        for (cfd, tid) in pairs {
            let n = self.sigma.get(CfdId(cfd));
            let key = self
                .work
                .tuple(TupleId(tid))
                .expect("dirty tuple is live")
                .project_key(n.lhs());
            shards[shard::shard_of(key.as_slice(), threads)].push((cfd, tid));
        }
        let (sigma, orig, work) = (self.sigma, self.orig, &self.work);
        let (rules, census, indexes) = (&self.rules, &self.census, &self.indexes);
        let (initial_vio, config, eq) = (&self.initial_vio, &self.config, &self.eq);
        // Workers share the main indexes read-only; arm the tripwire so a
        // stray lazy build inside the scoring fan-out fails loudly.
        indexes.freeze();
        let scored: Vec<(Vec<Candidate>, Vec<Vec<AttrId>>)> = if threads <= 1 {
            vec![score_shard(
                sigma,
                orig,
                work,
                rules,
                census,
                indexes,
                initial_vio,
                config,
                eq,
                &shards[0],
            )]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .iter()
                    .filter(|pairs| !pairs.is_empty())
                    .map(|pairs| {
                        s.spawn(move || {
                            score_shard(
                                sigma,
                                orig,
                                work,
                                rules,
                                census,
                                indexes,
                                initial_vio,
                                config,
                                eq,
                                pairs,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("frontier shard panicked"))
                    .collect()
            })
        };
        self.indexes.thaw();
        let mut frontiers = Vec::with_capacity(scored.len());
        let mut ensured: BTreeSet<Vec<AttrId>> = BTreeSet::new();
        for (candidates, attr_lists) in scored {
            frontiers.push(candidates);
            ensured.extend(attr_lists);
        }
        // Replay the S-set index builds the scoring touched on the main
        // state, at t=0: later lazy `ensure` calls must see identical
        // group orders no matter how many workers scored the frontier.
        for attrs in &ensured {
            self.indexes.ensure(&self.work, attrs);
        }
        for cand in shard::merge_frontiers(frontiers) {
            self.heap.push(Reverse(cand.key()));
        }
    }

    /// Effective value of a cell (target materialized into `work`).
    fn eff(&self, t: TupleId, a: AttrId) -> ValueId {
        self.work.tuple(t).expect("live tuple").id(a)
    }
}

impl<'p> Planner<'p> {
    /// A speculative planning worker's view over shared frozen state:
    /// read-only borrows of everything mutable, a private snapshot index
    /// overlay, a private distance memo. Call [`Planner::begin_recording`]
    /// before each pair and [`Planner::take_reads`] after it.
    pub(crate) fn snapshot(
        state: &'p BatchState<'_>,
        dcache: &'p mut DistanceCache,
    ) -> Planner<'p> {
        Planner {
            orig: state.orig,
            work: &state.work,
            rules: &state.rules,
            census: &state.census,
            initial_vio: &state.initial_vio,
            config: &state.config,
            eq: &state.eq,
            indexes: PlanIndexes::Snapshot {
                base: &state.indexes,
                local: GroupIndexes::empty(),
            },
            dcache,
            reads: None,
        }
    }

    /// Start recording reads into a fresh [`ReadSet`].
    pub(crate) fn begin_recording(&mut self) {
        self.reads = Some(ReadSet::default());
    }

    /// Stop recording and hand back what was read.
    pub(crate) fn take_reads(&mut self) -> ReadSet {
        self.reads.take().unwrap_or_default()
    }

    /// Record a work-tuple read (no-op outside speculative planning).
    fn note_tuple(&mut self, t: TupleId) {
        if let Some(r) = self.reads.as_mut() {
            r.tuples.insert(t);
        }
    }

    /// Record an equivalence-class read: the class is identified by its
    /// *current* root, which is also what commit-time write stamps use.
    /// The root walk only happens while recording — the sequential loop
    /// pays nothing.
    fn note_eq(&mut self, c: Cell) {
        if self.reads.is_none() {
            return;
        }
        let root = self.eq.find(c);
        if let Some(r) = self.reads.as_mut() {
            r.eq_roots.insert(root);
        }
    }

    /// Record a census-group read under a tracked shape.
    fn note_census<V: TupleView + ?Sized>(&mut self, lhs: &[AttrId], rhs: AttrId, t: &V) {
        if self.reads.is_none() {
            return;
        }
        let pos = self.census.shape_pos(lhs, rhs);
        let key = t.project_key(lhs);
        if let (Some(si), Some(r)) = (pos, self.reads.as_mut()) {
            r.census.insert((si, key));
        }
    }

    /// Record an S-set index group read.
    fn note_group(&mut self, attrs: &[AttrId], key: IdKey) {
        if let Some(r) = self.reads.as_mut() {
            r.groups.insert((attrs.to_vec(), key));
        }
    }

    /// The S-set index on `attrs`, lazily built according to the planning
    /// mode: straight on the main state (sequential loop), or into the
    /// worker-private overlay when the main state lacks it (speculative
    /// snapshot). Overlay touches of base-missing lists are recorded so
    /// the commit phase can replay the `ensure`s in merge order.
    fn s_index(&mut self, attrs: &[AttrId]) -> &HashIndex {
        match &mut self.indexes {
            PlanIndexes::Main(ix) => ix.ensure(self.work, attrs),
            PlanIndexes::Snapshot { base, local } => {
                let base: &'p GroupIndexes = base;
                match base.get(attrs) {
                    Some(ix) => ix,
                    None => {
                        if let Some(r) = self.reads.as_mut() {
                            if !r.ensured.iter().any(|a| a == attrs) {
                                r.ensured.push(attrs.to_vec());
                            }
                        }
                        local.ensure(self.work, attrs)
                    }
                }
            }
        }
    }

    /// Effective value of a cell (target materialized into `work`).
    fn eff(&mut self, t: TupleId, a: AttrId) -> ValueId {
        self.note_tuple(t);
        self.work.tuple(t).expect("live tuple").id(a)
    }

    /// Original value of a cell (for cost computation; the original
    /// relation is immutable, so this is never a recorded read).
    fn orig_id(&self, c: Cell) -> ValueId {
        self.orig.tuple(c.tuple).expect("live tuple").id(c.attr)
    }

    /// Constant-rule violations tuple `tid` would retain after setting
    /// attribute `b` to `v` — the damage a candidate fix leaves behind.
    /// Mirrors `TUPLERESOLVE`'s `vio(t[C/v̄])` term (§5.1): without it,
    /// a fix that silences one rule while tripping three others looks as
    /// cheap as the correct one, and wrong values cascade through shared
    /// groups. Constant rules only: they pin nearly every attribute in
    /// CFD workloads and cost O(shapes) to check.
    fn residual_vios(&mut self, tid: TupleId, b: AttrId, v: ValueId) -> usize {
        self.note_tuple(tid);
        let mut t = self.work.tuple(tid).expect("live").to_tuple();
        t.set_id(b, v);
        self.rules.violations_of(&t, None)
    }

    /// Does `t` currently violate normal CFD `n`? Variable violations
    /// require the partner to live in a *different* equivalence class —
    /// merged cells are already "resolved pending instantiation".
    pub(crate) fn violates(&mut self, n: &NormalCfd, tid: TupleId) -> Option<Violation> {
        self.note_tuple(tid);
        let t = self.work.tuple(tid)?;
        if !n.applies_to(&t) {
            return None;
        }
        let a = n.rhs_attr();
        let v = t.id(a);
        if n.is_constant() {
            if n.rhs_pattern_id().satisfied_by_id(v) {
                None
            } else {
                Some(Violation::Constant)
            }
        } else {
            if v.is_null() {
                return None;
            }
            // The group census is mutable state: record the read before
            // acting on it.
            self.note_census(n.lhs(), a, &t);
            // Census fast path: a group with ≤ 1 distinct non-null value
            // cannot conflict; conflicting ids are then enumerated
            // value-bucket by value-bucket instead of scanning the group.
            if self.census.distinct(n.lhs(), a, &t) <= 1 {
                return None;
            }
            // The partner choice feeds the fix pricing, so it must not
            // depend on interning history: bucket iteration is ValueId
            // (interning) order, so collect the bounded candidate set and
            // pick the smallest qualifying tuple id — a relation-content
            // property. (Groups with > 64 conflictors may still truncate
            // differently across histories; any partner is sound.)
            let candidates: Vec<TupleId> = self
                .census
                .conflicting_ids(n.lhs(), a, &t, v)
                .take(64)
                .collect();
            self.note_eq(Cell::new(tid, a));
            let mut partner: Option<TupleId> = None;
            for other in candidates {
                if other == tid {
                    continue;
                }
                self.note_eq(Cell::new(other, a));
                if self.eq.same_class(Cell::new(tid, a), Cell::new(other, a)) {
                    continue;
                }
                partner = Some(partner.map_or(other, |p| p.min(other)));
            }
            partner.map(|partner| Violation::Variable { partner })
        }
    }

    /// `FINDV` for an LHS attribute `b` of tuple `t` under CFD `n` (Fig. 5
    /// lines 4–5): pick from the effective `b`-values of tuples agreeing
    /// with `t` on `X ∪ {A} \ {b}` the value minimizing `Cost(t, b, v)`
    /// with `v ≠ t[b]`.
    fn findv_lhs(&mut self, n: &NormalCfd, tid: TupleId, b: AttrId) -> Option<(ValueId, f64)> {
        let mut s_attrs: Vec<AttrId> = n
            .lhs()
            .iter()
            .copied()
            .filter(|x| *x != b)
            .chain(std::iter::once(n.rhs_attr()))
            .collect();
        s_attrs.sort();
        s_attrs.dedup();
        self.note_tuple(tid);
        let t = self.work.tuple(tid).expect("live").to_tuple();
        self.note_group(&s_attrs, t.project_key(&s_attrs));
        let take = self.config.findv_candidates;
        let s_group: Vec<TupleId> = self
            .s_index(&s_attrs)
            .group_of(&t)
            .iter()
            .copied()
            .take(take)
            .collect();
        let current = t.id(b);
        // Collect the deduped candidate set first (in S-group order), then
        // price it target-major in one batch: each class member's pattern
        // bitmasks are built once and stream over all candidates, instead
        // of one full DP per (member, candidate) pair.
        let mut candidates: Vec<ValueId> = Vec::new();
        let mut seen: BTreeSet<ValueId> = BTreeSet::new();
        for cand_tid in s_group {
            if cand_tid == tid {
                continue;
            }
            let v = self.eff(cand_tid, b);
            if v.is_null() || v == current || !seen.insert(v) {
                continue;
            }
            candidates.push(v);
        }
        let costs = self.assign_costs(Cell::new(tid, b), &candidates);
        let mut best: Option<(ValueId, usize, f64)> = None;
        for (&v, cost) in candidates.iter().zip(costs) {
            let residual = self.class_residual_vios(Cell::new(tid, b), v);
            // Most-common-value heuristic: exact (residual, cost) ties go
            // to the most frequent candidate, read straight off the
            // dataset pool's per-id occurrence counters instead of
            // re-counting the S-group (ROADMAP "frequency-aware
            // interning"). The counters are scoped to this relation's
            // pool and only data loads bump them, so the tie-break is a
            // pure function of the dataset — never of what else the
            // process loaded. Remaining ties break by value order, which
            // is independent of interning history.
            let pool = self.orig.pool();
            let better = match &best {
                Some((bv, br, bc)) if (residual, cost) == (*br, *bc) => {
                    match pool.use_count(v).cmp(&pool.use_count(*bv)) {
                        std::cmp::Ordering::Equal => pool.cmp_values(v, *bv).is_lt(),
                        ord => ord.is_gt(),
                    }
                }
                Some((_, br, bc)) => (residual, cost) < (*br, *bc),
                None => true,
            };
            if better {
                best = Some((v, residual, cost));
            }
        }
        // Penalize residual damage the same way TUPLERESOLVE does.
        best.map(|(v, residual, cost)| (v, cost * (1.0 + residual as f64)))
    }

    /// Constant-rule violations the *whole class* of `cell` would retain
    /// after assigning it `v`, sampled up to a small bound. A `SetConst`
    /// pins every member, so damage to any member is real: pricing only
    /// the violating tuple let an LHS fix pin a freshly-merged zip class
    /// to the minority binding — zero residual on the tuple under repair,
    /// one on the silently-dragged member, cascade thereafter (the t599
    /// scenario in `robustness.rs`).
    fn class_residual_vios(&mut self, cell: Cell, v: ValueId) -> usize {
        const SAMPLE: usize = 8;
        self.note_eq(cell);
        // Copy only the sampled prefix — classes merged through
        // low-cardinality FDs hold thousands of cells and this runs on
        // every candidate pricing.
        let members: Vec<Cell> = self
            .eq
            .members(cell)
            .iter()
            .filter(|m| **m != cell)
            .take(SAMPLE)
            .copied()
            .collect();
        let mut total = self.residual_vios(cell.tuple, cell.attr, v);
        for m in members {
            total += self.residual_vios(m.tuple, m.attr, v);
        }
        total
    }

    /// Cost of assigning constant `v` to the class of `cell`.
    ///
    /// Exact (summed over the members' *original* values, §4.2's `Cost`)
    /// up to 64 members; beyond that, the class's value-homogeneity
    /// invariant (eager reconciliation keeps all members' working values
    /// equal) lets the sum collapse to `weight_sum · dis(current, v)` —
    /// O(1) instead of O(|class|), which matters once low-cardinality FDs
    /// have merged country-sized classes.
    fn assign_cost(&mut self, cell: Cell, v: ValueId) -> f64 {
        const EXACT_LIMIT: usize = 64;
        self.note_eq(cell);
        if self.eq.members(cell).len() > EXACT_LIMIT {
            let current = self.eff(cell.tuple, cell.attr);
            return if current == v {
                0.0
            } else {
                self.eq.weight_sum(cell) * self.dcache.normalized(current, v)
            };
        }
        let member_cells: Vec<Cell> = self.eq.members(cell).to_vec();
        let members: Vec<(f64, ValueId)> = member_cells
            .iter()
            .map(|c| {
                let w = self
                    .orig
                    .tuple(c.tuple)
                    .map(|t| t.weight(c.attr))
                    .unwrap_or(0.0);
                (w, self.orig_id(*c))
            })
            .collect();
        class_assign_cost_ids(members.iter().copied(), v, self.dcache)
    }

    /// [`assign_cost`](Self::assign_cost) over a whole candidate set,
    /// target-major: one prepared distance kernel per class member streams
    /// across all candidates. Every returned cost is bit-identical to the
    /// corresponding single-candidate call — same member order, same
    /// addition sequence, same memoized integers.
    fn assign_costs(&mut self, cell: Cell, candidates: &[ValueId]) -> Vec<f64> {
        const EXACT_LIMIT: usize = 64;
        if candidates.is_empty() {
            return Vec::new();
        }
        self.note_eq(cell);
        if self.eq.members(cell).len() > EXACT_LIMIT {
            let current = self.eff(cell.tuple, cell.attr);
            let w = self.eq.weight_sum(cell);
            let ds = self.dcache.normalized_batch(current, candidates);
            return candidates
                .iter()
                .zip(ds)
                .map(|(&v, d)| if current == v { 0.0 } else { w * d })
                .collect();
        }
        let member_cells: Vec<Cell> = self.eq.members(cell).to_vec();
        let members: Vec<(f64, ValueId)> = member_cells
            .iter()
            .map(|c| {
                let w = self
                    .orig
                    .tuple(c.tuple)
                    .map(|t| t.weight(c.attr))
                    .unwrap_or(0.0);
                (w, self.orig_id(*c))
            })
            .collect();
        class_assign_cost_ids_batch(&members, candidates, self.dcache)
    }

    /// Plan the LHS-change resolution shared by cases 1.2 and 2.2: try a
    /// FINDV constant on a free LHS class (restricted to pattern-constant
    /// positions for constant CFDs), falling back to nulling the
    /// minimum-weight LHS class.
    fn plan_lhs_change(&mut self, n: &NormalCfd, candidates: &[TupleId]) -> Option<(Fix, f64)> {
        let mut best: Option<(Fix, f64)> = None;
        for &tid in candidates {
            for (i, &b) in n.lhs().iter().enumerate() {
                let cell = Cell::new(tid, b);
                self.note_eq(cell);
                if *self.eq.target(cell) != Target::Free {
                    continue;
                }
                // For constant CFDs, rewriting a wildcard-matched LHS
                // attribute cannot break the pattern match; only constant
                // positions (or the null fallback) resolve the violation.
                if n.is_constant() && n.lhs_pattern()[i].is_wildcard() {
                    continue;
                }
                if let Some((v, cost)) = self.findv_lhs(n, tid, b) {
                    // Commitment premium: a FINDV constant is irreversible
                    // (targets never move between constants), while a class
                    // merge of the same price is still revisable by later
                    // evidence. Pricing the hard commitment slightly above
                    // lets soft fixes win ties, which stops a wrong LHS
                    // constant from triggering the conflicting-constant
                    // cascade of case 2.2.
                    let cost = cost * 1.25;
                    if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
                        best = Some((Fix::SetConst { cell, v }, cost));
                    }
                }
            }
        }
        if best.is_some() {
            return best;
        }
        // Fallback: null the LHS class with minimal weight sum among all
        // candidates' LHS cells that are not already null.
        let mut pick: Option<(Cell, f64)> = None;
        for &tid in candidates {
            for &b in n.lhs() {
                let cell = Cell::new(tid, b);
                self.note_eq(cell);
                if *self.eq.target(cell) == Target::Null {
                    continue;
                }
                let w = self.eq.weight_sum(cell);
                if pick.map(|(_, pw)| w < pw).unwrap_or(true) {
                    pick = Some((cell, w));
                }
            }
        }
        pick.map(|(cell, w)| (Fix::SetNull { cell }, w))
    }

    /// `CFD-RESOLVE` planning (§4.1): given a verified violation, produce
    /// the fix and its cost. Returns `None` only in the degenerate case of
    /// a violation with every involved class already null (impossible by
    /// the violation definitions, but handled defensively).
    pub(crate) fn plan_fix(
        &mut self,
        n: &NormalCfd,
        tid: TupleId,
        v: &Violation,
    ) -> Option<(Fix, f64)> {
        let a = n.rhs_attr();
        match v {
            Violation::Constant => {
                let cell = Cell::new(tid, a);
                let pat = n
                    .rhs_pattern_id()
                    .as_const_id()
                    .expect("constant violation implies constant pattern");
                self.note_eq(cell);
                match *self.eq.target(cell) {
                    // Case 1.1: free RHS target — assigning the pattern
                    // constant is available. §3.1 resolves "in more than
                    // one way" and chooses by cost, so the LHS change is
                    // also priced: when the *pattern key* is the corrupted
                    // cell (low weight), rewriting it beats dragging the
                    // RHS to the wrong binding.
                    Target::Free => {
                        let raw = self.assign_cost(cell, pat);
                        let residual = self.class_residual_vios(cell, pat);
                        let rhs_cost = raw * (1.0 + residual as f64);
                        let rhs_fix = (Fix::SetConst { cell, v: pat }, rhs_cost);
                        match self.plan_lhs_change(n, &[tid]) {
                            Some((lhs_fix, lhs_cost)) if lhs_cost < rhs_cost => {
                                Some((lhs_fix, lhs_cost))
                            }
                            _ => Some(rhs_fix),
                        }
                    }
                    // Case 1.2: conflicting constant (or null) — change LHS.
                    Target::Const(_) | Target::Null => self.plan_lhs_change(n, &[tid]),
                }
            }
            Violation::Variable { partner } => {
                // Deferral: a tuple with unresolved *constant* violations
                // is a suspect — its group memberships are untrustworthy
                // (e.g. a corrupted CTY places it in the wrong country
                // group). Merging it now would irreversibly contaminate an
                // innocent class, so variable resolutions involving
                // suspects are pushed behind all clean fixes; by the time
                // they re-verify, the constant repairs have usually
                // dissolved the conflict.
                const SUSPECT_VIO: usize = 8;
                let initial_suspects =
                    usize::from(self.initial_vio.get(&tid).copied().unwrap_or(0) > SUSPECT_VIO)
                        + usize::from(
                            self.initial_vio.get(partner).copied().unwrap_or(0) > SUSPECT_VIO,
                        );
                self.note_tuple(tid);
                self.note_tuple(*partner);
                let suspects = self
                    .rules
                    .violations_of(&self.work.tuple(tid).expect("live"), None)
                    + self
                        .rules
                        .violations_of(&self.work.tuple(*partner).expect("live"), None)
                    + initial_suspects;
                let defer_penalty = 10.0 * suspects as f64;
                let (c1, c2) = (Cell::new(tid, a), Cell::new(*partner, a));
                self.note_eq(c1);
                self.note_eq(c2);
                let t1 = *self.eq.target(c1);
                let t2 = *self.eq.target(c2);
                match (&t1, &t2) {
                    // Case 2.3: nulls never conflict — filtered by violates().
                    (Target::Null, _) | (_, Target::Null) => None,
                    // Case 2.2: distinct constants — LHS change on t or t'.
                    (Target::Const(x), Target::Const(y)) if x != y => self
                        .plan_lhs_change(n, &[tid, *partner])
                        .map(|(fix, cost)| (fix, cost + defer_penalty)),
                    // Case 2.1: at least one side free — merge. Merging is
                    // irreversible, so it is priced at the *reconciliation*
                    // cost it commits to: some single value must eventually
                    // cover both classes. Pricing it at zero would let a
                    // corrupted cell merge into a foreign group before the
                    // cheap constant fix that dissolves the conflict, and
                    // the group would then be dragged wholesale at
                    // instantiation.
                    _ => {
                        // `const_forced` marks the Const/Free arms: the
                        // merge has no choice of winner — the free class
                        // must adopt the pinned constant, however large
                        // its group support.
                        let (cost, winner, loser_residual, const_forced) = match (&t1, &t2) {
                            (Target::Const(x), Target::Free) => {
                                let x = *x;
                                let residual = self.class_residual_vios(c2, x);
                                let cost = self.assign_cost(c2, x) * (1.0 + residual as f64);
                                (cost, None, residual, true)
                            }
                            (Target::Free, Target::Const(y)) => {
                                let y = *y;
                                let residual = self.class_residual_vios(c1, y);
                                let cost = self.assign_cost(c1, y) * (1.0 + residual as f64);
                                (cost, None, residual, true)
                            }
                            (Target::Free, Target::Free) => {
                                let v1 = self.eff(tid, a);
                                let v2 = self.eff(*partner, a);
                                if v1 == v2 {
                                    (0.0, None, 0, false)
                                } else {
                                    let (c, w, r) = self.plan_group_merge(n, tid, *partner, v1, v2);
                                    (c, w, r, false)
                                }
                            }
                            _ => unreachable!("nulls filtered above"),
                        };
                        let merge = (
                            Fix::Merge {
                                a: c1,
                                b: c2,
                                winner,
                            },
                            cost + defer_penalty,
                        );
                        // §3.1 case (2) also allows changing t[X] (or
                        // t'[X]) so the tuples stop agreeing. Offering
                        // that escape on free/free merges is destructive
                        // (healthy conflicts get "fixed" by rewriting a
                        // group key to a DL-close foreign value), so those
                        // always merge with the group-majority winner. The
                        // escape is offered only when a *pinned constant*
                        // would be forced onto a class whose adoption
                        // leaves residual constant violations — the
                        // signature of a repaired-but-misplaced tuple (its
                        // corrupted group key, e.g. a street, still parks
                        // it in a foreign group; merging would flip the
                        // group member by member).
                        if const_forced && loser_residual > 0 {
                            if let Some((lhs_fix, lhs_cost)) =
                                self.plan_lhs_change(n, &[tid, *partner])
                            {
                                if lhs_cost + defer_penalty < merge.1 {
                                    return Some((lhs_fix, lhs_cost + defer_penalty));
                                }
                            }
                        }
                        Some(merge)
                    }
                }
            }
        }
    }

    /// Price a free/free variable-CFD merge over the *whole agreeing
    /// group*, not just the two cells. Pairwise pricing makes the first
    /// merge between a corrupted tuple and a 16-tuple clean group a
    /// near coin flip on two cell weights; once the wrong side wins, each
    /// following merge pits the grown class against one more lone cell and
    /// the whole group snowballs to the corrupted value. Group pricing
    /// implements the paper's most-common-value guidance at the point
    /// where it matters: the winner is the value with the largest
    /// weighted support among the group's carriers, and the cost is what
    /// it takes to move every minority carrier there.
    fn plan_group_merge(
        &mut self,
        n: &NormalCfd,
        tid: TupleId,
        partner: TupleId,
        v1: ValueId,
        v2: ValueId,
    ) -> (f64, Option<ValueId>, usize) {
        let a = n.rhs_attr();
        if self.config.merge_pricing == MergePricing::Pairwise {
            return self.plan_pairwise_merge(n, tid, partner, v1, v2);
        }
        self.note_tuple(tid);
        let t = self.work.tuple(tid).expect("live").to_tuple();
        self.note_census(n.lhs(), a, &t);
        // (value, incremental weight sum, sampled carriers, carrier
        // count) per bucket. Weight sums are maintained by the census, so
        // this is O(distinct values) plus the ≤ SAMPLE carriers actually
        // priced below — a country-sized majority bucket is never cloned.
        // Carrier iteration per bucket is tuple-id ordered; winner ties
        // across buckets break by *value* order below, so the choice does
        // not depend on interning history.
        const SAMPLE: usize = 16;
        let buckets: Vec<(ValueId, f64, Vec<TupleId>, usize)> = self
            .census
            .value_buckets(n.lhs(), a, &t)
            .map(|m| {
                m.iter()
                    .map(|(v, b)| {
                        (
                            *v,
                            b.weight,
                            b.ids.iter().copied().take(SAMPLE).collect(),
                            b.ids.len(),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        if buckets.len() < 2 {
            // Census unavailable (e.g. the shape is tracked under a
            // different minimal CFD) — fall back to pairwise pricing.
            return self.plan_pairwise_merge(n, tid, partner, v1, v2);
        }
        // Weight ties break by *value* order (pool comparison), so the
        // winner does not depend on interning history.
        let pool = self.orig.pool();
        let wi = buckets
            .iter()
            .enumerate()
            .max_by(|(_, (va, x, _, _)), (_, (vb, y, _, _))| {
                x.partial_cmp(y)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| pool.cmp_values(*vb, *va))
            })
            .map(|(i, _)| i)
            .expect("buckets non-empty");
        let winner = buckets[wi].0;
        // Moving every minority carrier to the winner; sampled and scaled
        // beyond SAMPLE carriers per bucket, to bound planning cost.
        let mut cost = 0.0;
        for (bi, (_, _, ids, total)) in buckets.iter().enumerate() {
            if bi == wi {
                continue;
            }
            let mut bucket_cost = 0.0;
            for id in ids {
                bucket_cost += self.assign_cost(Cell::new(*id, a), winner);
            }
            if *total > ids.len() {
                bucket_cost *= *total as f64 / ids.len() as f64;
            }
            cost += bucket_cost;
        }
        // Residual damage of the representative loser, as elsewhere.
        let loser = if winner == v1 { partner } else { tid };
        let residual = self.class_residual_vios(Cell::new(loser, a), winner);
        let cost = cost * (1.0 + residual as f64);
        (cost, Some(winner), residual)
    }

    /// Two-cell merge pricing: the literal §4.1 reading, also the
    /// fallback when the census does not track a shape. Compares moving
    /// either class to the other's value, residuals included.
    fn plan_pairwise_merge(
        &mut self,
        n: &NormalCfd,
        tid: TupleId,
        partner: TupleId,
        v1: ValueId,
        v2: ValueId,
    ) -> (f64, Option<ValueId>, usize) {
        let a = n.rhs_attr();
        let (c1, c2) = (Cell::new(tid, a), Cell::new(partner, a));
        let r2 = self.class_residual_vios(c1, v2);
        let r1 = self.class_residual_vios(c2, v1);
        let towards_v2 = (self.assign_cost(c1, v2) + self.assign_cost(c2, v2)) * (1.0 + r2 as f64);
        let towards_v1 = (self.assign_cost(c1, v1) + self.assign_cost(c2, v1)) * (1.0 + r1 as f64);
        if towards_v1 <= towards_v2 {
            (towards_v1, Some(v1), r1)
        } else {
            (towards_v2, Some(v2), r2)
        }
    }
}

impl<'a> BatchState<'a> {
    /// Write a value into a cell of `work`, updating indexes and dirty
    /// sets (§4.2's `Dirty_Tuples` maintenance).
    fn write_cell(&mut self, cell: Cell, v: ValueId) {
        let before = self.work.tuple(cell.tuple).expect("live").to_tuple();
        if before.id(cell.attr) == v {
            return;
        }
        self.work
            .set_value_id(cell.tuple, cell.attr, v)
            .expect("live tuple");
        let after = self.work.tuple(cell.tuple).expect("live").to_tuple();
        // Stamp the write for speculative read-set validation before the
        // downstream structures change: the tuple itself, every census
        // group it enters or leaves, and every watched S-set index group.
        if let Some(log) = self.spec_log.as_mut() {
            log.record_write(cell, &before, &after, &self.census);
        }
        self.indexes.update(cell.tuple, &before, &after);
        self.census.update(cell.tuple, &before, &after);
        // Constant rules are per-tuple: only the rules firing on the new
        // image of this tuple can be newly violated (stale entries for the
        // old image are pruned lazily by the verify step).
        let mut fired: Vec<CfdId> = Vec::new();
        self.rules.for_each_fired(&after, |_, r| {
            if !r.rhs.satisfied_by_id(after.id(r.rhs_attr)) {
                fired.push(r.id);
            }
        });
        for id in fired {
            if self.dirty[id.index()].insert(cell.tuple)
                && self.config.pick == PickStrategy::GlobalBest
            {
                // optimistic minimum key: priced properly on first pop
                self.heap.push(Reverse((0, 0, 0, id.0, cell.tuple.0)));
            }
        }
        // Variable CFDs mentioning the changed attribute: this tuple and
        // its (new) group may now conflict. Marking the *whole* group
        // dirty is O(|group|) per write and quadratic on low-cardinality
        // shapes (a CTY group is a fifth of the database); instead mark
        // the written tuple plus the census's minority carriers. Every
        // cross-value pair in a heterogeneous group involves at least one
        // tuple outside the largest value bucket, so covering all
        // non-majority buckets covers every conflict.
        for vi in 0..self.variable_ids.len() {
            let psi = self.variable_ids[vi];
            let n = self.sigma.get(psi);
            if !n.mentions(cell.attr) {
                continue;
            }
            let a = n.rhs_attr();
            let mut to_mark: Vec<TupleId> = vec![cell.tuple];
            if let Some(buckets) = self.census.value_buckets(n.lhs(), a, &after) {
                if buckets.len() > 1 {
                    let pool = self.orig.pool();
                    let majority = buckets
                        .iter()
                        .max_by(|(va, x), (vb, y)| {
                            x.weight
                                .partial_cmp(&y.weight)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then_with(|| pool.cmp_values(**vb, **va))
                        })
                        .map(|(v, _)| *v)
                        .expect("non-empty buckets");
                    for (v, bucket) in buckets {
                        if *v != majority {
                            to_mark.extend(bucket.ids.iter().copied());
                        }
                    }
                }
            }
            for member in to_mark {
                if self.dirty[psi.index()].insert(member)
                    && self.config.pick == PickStrategy::GlobalBest
                {
                    self.heap.push(Reverse((0, 0, 0, psi.0, member.0)));
                }
            }
        }
    }

    /// Apply a Const/Null target of `cell`'s class to all members' working
    /// values. (Free classes are reconciled eagerly at merge time, in the
    /// `Merge` arm of `apply_fix`, touching only the losing side.)
    fn materialize_class(&mut self, cell: Cell) {
        let target = *self.eq.target(cell);
        let value = match target {
            Target::Free => return,
            Target::Const(v) => v,
            Target::Null => NULL_ID,
        };
        let members: Vec<Cell> = self.eq.members(cell).to_vec();
        for m in members {
            self.write_cell(m, value);
        }
    }

    /// Apply a planned fix. Each application strictly increases the class
    /// progress measure, which bounds the main loop (Theorem 4.2).
    pub(crate) fn apply_fix(&mut self, fix: Fix) -> Result<(), RepairError> {
        let before_progress = self.eq.progress();
        // Stamp the classes this fix is about to mutate (by their pre-op
        // roots — the same identification plan read-sets record).
        if self.spec_log.is_some() {
            let roots = match &fix {
                Fix::SetConst { cell, .. } | Fix::SetNull { cell } => vec![self.eq.find(*cell)],
                Fix::Merge { a, b, .. } => vec![self.eq.find(*a), self.eq.find(*b)],
            };
            if let Some(log) = self.spec_log.as_mut() {
                log.record_eq(&roots);
            }
        }
        match fix {
            Fix::SetConst { cell, v } => {
                self.eq
                    .set_target(cell, Target::Const(v))
                    .map_err(|e| RepairError::Internal(e.to_string()))?;
                self.stats.consts_set += 1;
                self.materialize_class(cell);
            }
            Fix::SetNull { cell } => {
                if std::env::var_os("CFD_DEBUG_NULLS").is_some() {
                    eprintln!(
                        "SETNULL tuple={} attr={} ws={:.2}",
                        cell.tuple,
                        cell.attr,
                        self.eq.weight_sum(cell)
                    );
                }
                self.eq
                    .set_target(cell, Target::Null)
                    .map_err(|e| RepairError::Internal(e.to_string()))?;
                self.stats.nulls_set += 1;
                self.materialize_class(cell);
            }
            Fix::Merge { a, b, winner } => {
                let va = self.eff(a.tuple, a.attr);
                let vb = self.eff(b.tuple, b.attr);
                // The group-majority winner was chosen at plan time
                // (plan_group_merge); fall back to pre-merge pairwise
                // pricing when the plan carried none. Pricing must happen
                // *before* merging: afterwards both cells resolve to the
                // same class and the comparison degenerates.
                let free_winner = if va == vb {
                    None
                } else if let Some(w) = winner {
                    Some(w)
                } else {
                    let ca = self.planner().assign_cost(a, vb); // move side A → vb
                    let cb = self.planner().assign_cost(b, va); // move side B → va
                    Some(if ca <= cb { vb } else { va })
                };
                // The merged class's value, mirroring the target lattice
                // of `EqClasses::merge`: null dominates, then constants,
                // then the group-majority winner between free classes.
                let ta = *self.eq.target(a);
                let tb = *self.eq.target(b);
                let merged_value: Option<ValueId> = match (&ta, &tb) {
                    (Target::Null, _) | (_, Target::Null) => Some(NULL_ID),
                    (Target::Const(x), _) => Some(*x),
                    (_, Target::Const(y)) => Some(*y),
                    (Target::Free, Target::Free) => free_winner,
                };
                // Capture only the sides that will be rewritten, before
                // the merge dissolves them into one class. The winning
                // side is untouched (classes are value-homogeneous), so a
                // merge is O(|losing side|), not O(|merged class|) — a
                // country-sized winner class is never cloned.
                let (side_a, side_b) = match &merged_value {
                    Some(w) => (
                        if va != *w {
                            self.eq.members(a).to_vec()
                        } else {
                            Vec::new()
                        },
                        if vb != *w {
                            self.eq.members(b).to_vec()
                        } else {
                            Vec::new()
                        },
                    ),
                    None => (Vec::new(), Vec::new()),
                };
                self.eq
                    .merge(a, b)
                    .map_err(|e| RepairError::Internal(e.to_string()))?;
                self.stats.merges += 1;
                if let Some(winner) = merged_value {
                    for m in side_a.into_iter().chain(side_b) {
                        self.write_cell(m, winner);
                    }
                }
            }
        }
        self.stats.steps += 1;
        if self.eq.progress() <= before_progress {
            return Err(RepairError::Internal(
                "resolution step made no progress".to_string(),
            ));
        }
        Ok(())
    }

    /// Remove stale entries and return the next verified violation of CFD
    /// `id`, if any.
    fn next_violation_of(&mut self, id: CfdId) -> Option<(TupleId, Violation)> {
        loop {
            let tid = *self.dirty[id.index()].iter().next()?;
            let n = self.sigma.get(id).clone();
            match self.planner().violates(&n, tid) {
                Some(v) => return Some((tid, v)),
                None => {
                    self.dirty[id.index()].remove(&tid);
                }
            }
        }
    }

    /// One `PICKNEXT` + `CFD-RESOLVE` step under the global-best strategy:
    /// pop heap entries, re-verify and re-price lazily, apply the first
    /// entry whose price is still current. Returns false when no
    /// violations remain.
    pub(crate) fn step_global(&mut self) -> Result<bool, RepairError> {
        while let Some(Reverse(key)) = self.heap.pop() {
            let (_, _, _, cfd_raw, tid_raw) = key;
            let id = CfdId(cfd_raw);
            let tid = TupleId(tid_raw);
            if !self.dirty[id.index()].contains(&tid) {
                continue; // already resolved (stale duplicate)
            }
            let n = self.sigma.get(id).clone();
            let violation = match self.planner().violates(&n, tid) {
                Some(v) => v,
                None => {
                    self.dirty[id.index()].remove(&tid);
                    continue;
                }
            };
            let (fix, cost) = match self.planner().plan_fix(&n, tid, &violation) {
                Some(planned) => planned,
                None => {
                    self.dirty[id.index()].remove(&tid);
                    continue;
                }
            };
            let (freq, value) = fix_meta(&fix, self.orig.pool());
            let price: HeapKey = (cost_key(cost), freq, value, cfd_raw, tid_raw);
            if price > key {
                // Costs rose since this entry was queued: re-queue at the
                // correct priority and look at the next candidate.
                self.heap.push(Reverse(price));
                continue;
            }
            if std::env::var_os("CFD_DEBUG_FIXES").is_some() {
                eprintln!(
                    "FIX cfd={} row={} cost={:.3} {}",
                    n.source_name(),
                    n.source_row(),
                    cost,
                    fix.describe(self.orig.pool())
                );
            }
            self.apply_fix(fix)?;
            // The tuple may still violate this CFD with other partners:
            // keep it queued for re-verification at the same price.
            self.heap.push(Reverse(price));
            return Ok(true);
        }
        Ok(false)
    }

    /// Drain all violations CFD-by-CFD in dependency order. Returns false
    /// when a full pass found nothing to do.
    fn step_dependency(&mut self, graph: &DepGraph) -> Result<bool, RepairError> {
        let mut any = false;
        for &id in graph.order() {
            if self.dirty[id.index()].is_empty() {
                continue;
            }
            while let Some((tid, v)) = self.next_violation_of(id) {
                let n = self.sigma.get(id).clone();
                match self.planner().plan_fix(&n, tid, &v) {
                    Some((fix, _)) => {
                        self.apply_fix(fix)?;
                        any = true;
                    }
                    None => {
                        self.dirty[id.index()].remove(&tid);
                    }
                }
            }
        }
        Ok(any)
    }

    /// Instantiation phase (Fig. 4 lines 9–13): every still-free
    /// multi-member class is pinned to a constant. The paper assigns "a
    /// constant with the least cost"; in this implementation merges are
    /// reconciled eagerly, so by the time the loop drains the class
    /// already carries a violation-free effective value — the
    /// group-majority winner of its merge history. We pin *that* value:
    /// re-deriving the least-cost constant from the members' original
    /// values would re-run the two-member weight coin flip that group
    /// pricing exists to avoid, flipping e.g. a five-carrier price group
    /// back to one corrupted member's value. Picking the effective value
    /// also adds zero cost on top of the changes already made.
    fn instantiate_free_classes(&mut self) -> Result<bool, RepairError> {
        let roots = self.eq.free_multi_member_roots();
        if roots.is_empty() {
            return Ok(false);
        }
        self.stats.instantiation_rounds += 1;
        for root in roots {
            let eff = self.eff(root.tuple, root.attr);
            let fix = if eff.is_null() {
                Fix::SetNull { cell: root }
            } else {
                Fix::SetConst { cell: root, v: eff }
            };
            self.apply_fix(fix)?;
        }
        Ok(true)
    }

    fn run(mut self) -> Result<BatchOutcome, RepairError> {
        let graph = DepGraph::build(self.sigma);
        // Hard bound: progress is ≤ 4·cells, so the loop cannot legally
        // exceed that many fixes; a generous multiple guards against bugs.
        let cells = self.work.len() * self.work.schema().arity();
        let max_steps = 8 * cells + 64;
        let speculating = self.spec_stats.is_some();
        loop {
            loop {
                let advanced = match self.config.pick {
                    PickStrategy::GlobalBest if speculating => self.step_speculative(max_steps)?,
                    PickStrategy::GlobalBest => self.step_global()?,
                    PickStrategy::DependencyOrdered => self.step_dependency(&graph)?,
                };
                if self.stats.steps > max_steps {
                    return Err(RepairError::Internal(format!(
                        "exceeded step bound {max_steps}: termination invariant broken"
                    )));
                }
                if !advanced {
                    break;
                }
            }
            // No dirty tuples: instantiate remaining free classes; if that
            // changed anything, new violations may have appeared.
            if !self.instantiate_free_classes()? {
                break;
            }
        }
        let cost = repair_cost(self.orig, &self.work);
        self.stats.cost = cost;
        Ok(BatchOutcome {
            repair: self.work,
            stats: self.stats,
            speculation: self.spec_stats,
            trace: self.trace,
        })
    }
}

/// Run `BATCHREPAIR` on `d` with respect to `sigma`.
///
/// Returns a repair satisfying `sigma` (guaranteed by Theorem 4.2's
/// progress argument, enforced at runtime) together with statistics. The
/// input relation is not modified.
pub fn batch_repair(
    d: &Relation,
    sigma: &Sigma,
    config: BatchConfig,
) -> Result<BatchOutcome, RepairError> {
    let state = BatchState::new(d, sigma, config);
    let outcome = state.run()?;
    debug_assert!(cfd_cfd::check(&outcome.repair, sigma));
    Ok(outcome)
}

/// [`batch_repair`] reusing prebuilt detection [`EngineParts`] — the
/// resident-dataset entry point. A warm handle keeps the parts built at
/// rule-bind time and clones them per repair, skipping the index
/// rebuild. Parts contents are thread-count-independent, so the result
/// is byte-identical to [`batch_repair`] with the same config.
pub fn batch_repair_with_parts(
    d: &Relation,
    sigma: &Sigma,
    parts: EngineParts,
    config: BatchConfig,
) -> Result<BatchOutcome, RepairError> {
    let state = BatchState::new_with_parts(d, sigma, config, parts);
    let outcome = state.run()?;
    debug_assert!(cfd_cfd::check(&outcome.repair, sigma));
    Ok(outcome)
}

/// [`batch_repair`] with the speculative commit/abort audit trace.
///
/// The trace is a deterministic line-per-event log of the speculative
/// resolution loop — round boundaries, plan verdicts (commit, requeue,
/// drop, abort with the failing read category, miss), and the `ensure`
/// replays — and is empty for non-speculative configurations. The golden
/// fixture suite pins it so changes to the validation logic are
/// reviewable as fixture diffs.
pub fn batch_repair_traced(
    d: &Relation,
    sigma: &Sigma,
    config: BatchConfig,
) -> Result<(BatchOutcome, Vec<String>), RepairError> {
    let mut state = BatchState::new(d, sigma, config);
    state.trace = Some(Vec::new());
    let mut outcome = state.run()?;
    debug_assert!(cfd_cfd::check(&outcome.repair, sigma));
    let trace = outcome.trace.take().unwrap_or_default();
    Ok((outcome, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_cfd::pattern::{PatternRow, PatternValue};
    use cfd_cfd::Cfd;
    use cfd_model::{Schema, Tuple, Value};

    fn fig1() -> (Relation, Sigma) {
        let schema = Schema::new(
            "order",
            &["id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip"],
        )
        .unwrap();
        let mut rel = Relation::new(schema.clone());
        let rows = [
            [
                "a23",
                "H. Porter",
                "17.99",
                "215",
                "8983490",
                "Walnut",
                "PHI",
                "PA",
                "19014",
            ],
            [
                "a23",
                "H. Porter",
                "17.99",
                "610",
                "3456789",
                "Spruce",
                "PHI",
                "PA",
                "19014",
            ],
            [
                "a12",
                "J. Denver",
                "7.94",
                "212",
                "3345677",
                "Canel",
                "PHI",
                "PA",
                "10012",
            ],
            [
                "a89",
                "Snow White",
                "18.99",
                "212",
                "5674322",
                "Broad",
                "PHI",
                "PA",
                "10012",
            ],
        ];
        let weights = [
            [1.0, 0.5, 0.5, 0.5, 0.5, 0.8, 0.8, 0.8, 0.8],
            [1.0, 0.5, 0.5, 0.5, 0.5, 0.6, 0.6, 0.6, 0.6],
            [1.0, 0.9, 0.9, 0.9, 0.9, 0.6, 0.1, 0.1, 0.8],
            [1.0, 0.6, 0.5, 0.9, 0.9, 0.1, 0.6, 0.6, 0.9],
        ];
        for (row, ws) in rows.iter().zip(weights.iter()) {
            let values = row.iter().map(|s| Value::str(*s)).collect();
            rel.insert(Tuple::with_weights(values, ws.to_vec()))
                .unwrap();
        }
        let phi1 = Cfd::new(
            "phi1",
            schema.attrs_named(&["AC", "PN"]).unwrap(),
            schema.attrs_named(&["STR", "CT", "ST"]).unwrap(),
            vec![
                PatternRow::new(
                    vec![PatternValue::constant("212"), PatternValue::Wildcard],
                    vec![
                        PatternValue::Wildcard,
                        PatternValue::constant("NYC"),
                        PatternValue::constant("NY"),
                    ],
                ),
                PatternRow::new(
                    vec![PatternValue::constant("610"), PatternValue::Wildcard],
                    vec![
                        PatternValue::Wildcard,
                        PatternValue::constant("PHI"),
                        PatternValue::constant("PA"),
                    ],
                ),
                PatternRow::new(
                    vec![PatternValue::constant("215"), PatternValue::Wildcard],
                    vec![
                        PatternValue::Wildcard,
                        PatternValue::constant("PHI"),
                        PatternValue::constant("PA"),
                    ],
                ),
            ],
        )
        .unwrap();
        let phi2 = Cfd::new(
            "phi2",
            schema.attrs_named(&["zip"]).unwrap(),
            schema.attrs_named(&["CT", "ST"]).unwrap(),
            vec![
                PatternRow::new(
                    vec![PatternValue::constant("10012")],
                    vec![PatternValue::constant("NYC"), PatternValue::constant("NY")],
                ),
                PatternRow::new(
                    vec![PatternValue::constant("19014")],
                    vec![PatternValue::constant("PHI"), PatternValue::constant("PA")],
                ),
            ],
        )
        .unwrap();
        let sigma = Sigma::normalize(schema, vec![phi1, phi2]).unwrap();
        (rel, sigma)
    }

    #[test]
    fn fig1_repair_fixes_t3_t4_city_state() {
        // The faithful cost-ordered PICKNEXT must reproduce the paper's
        // intended repair (Example 1.1): t3 and t4 get CT=NYC, ST=NY —
        // their CT/ST weights (0.1/0.6) are the cheap cells.
        let (rel, sigma) = fig1();
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert!(cfd_cfd::check(&out.repair, &sigma));
        let schema = out.repair.schema().clone();
        let ct = schema.attr("CT").unwrap();
        let st = schema.attr("ST").unwrap();
        let zip = schema.attr("zip").unwrap();
        // t3's CT/ST weights (0.1) make Example 3.1's option (1) clearly
        // cheapest: CT,ST := NYC,NY.
        assert_eq!(
            out.repair.tuple(TupleId(2)).unwrap().value(ct),
            Value::str("NYC")
        );
        assert_eq!(
            out.repair.tuple(TupleId(2)).unwrap().value(st),
            Value::str("NY")
        );
        // t4 (CT/ST at 0.6, zip at 0.9) admits two comparably-priced
        // repairs: the paper's CT,ST := NYC,NY, or rebinding to the
        // Philadelphia zip. Require one of the two semantically sensible
        // outcomes rather than over-fitting to greedy tie-breaks.
        let t4 = out.repair.tuple(TupleId(3)).unwrap();
        let to_nyc = t4.value(ct) == Value::str("NYC") && t4.value(st) == Value::str("NY");
        let to_phi = t4.value(ct) == Value::str("PHI") && t4.value(zip) == Value::str("19014");
        assert!(to_nyc || to_phi, "unexpected t4 repair: {t4:?}");
        // t1 and t2 untouched.
        for id in [TupleId(0), TupleId(1)] {
            assert_eq!(out.repair.tuple(id).unwrap(), rel.tuple(id).unwrap());
        }
        assert!(out.stats.cost > 0.0);
    }

    #[test]
    fn fig1_dependency_ordered_still_consistent() {
        // The dependency-ordered optimization is blind to global cost
        // order, so it may choose a different — but still consistent —
        // repair.
        let (rel, sigma) = fig1();
        let out = batch_repair(
            &rel,
            &sigma,
            BatchConfig {
                pick: PickStrategy::DependencyOrdered,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cfd_cfd::check(&out.repair, &sigma));
        assert!(out.stats.steps > 0);
    }

    #[test]
    fn clean_input_is_returned_unchanged() {
        let (mut rel, sigma) = fig1();
        let schema = rel.schema().clone();
        let ct = schema.attr("CT").unwrap();
        let st = schema.attr("ST").unwrap();
        for id in [TupleId(2), TupleId(3)] {
            rel.set_value(id, ct, Value::str("NYC")).unwrap();
            rel.set_value(id, st, Value::str("NY")).unwrap();
        }
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert_eq!(out.stats.steps, 0);
        assert_eq!(out.stats.cost, 0.0);
        for (id, t) in rel.iter() {
            assert_eq!(out.repair.tuple(id).unwrap(), t);
        }
    }

    #[test]
    fn example_4_1_oscillation_terminates() {
        // The t1/t5 interaction of Example 4.1: inserting t5 = (215,
        // 8983490, …, NYC, NY, 10012) creates a cycle between ϕ1 (forces
        // PHI/PA) and ϕ2 (forces NYC/NY). FD-style RHS-only repair loops;
        // BATCHREPAIR must terminate with a consistent repair.
        let (mut rel, sigma) = fig1();
        let schema = rel.schema().clone();
        let ct = schema.attr("CT").unwrap();
        let st = schema.attr("ST").unwrap();
        for id in [TupleId(2), TupleId(3)] {
            rel.set_value(id, ct, Value::str("NYC")).unwrap();
            rel.set_value(id, st, Value::str("NY")).unwrap();
        }
        rel.insert(Tuple::from_iter([
            "a55", "K. Oyle", "12.00", "215", "8983490", "Walnut", "NYC", "NY", "10012",
        ]))
        .unwrap();
        for pick in [PickStrategy::DependencyOrdered, PickStrategy::GlobalBest] {
            let out = batch_repair(
                &rel,
                &sigma,
                BatchConfig {
                    pick,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(cfd_cfd::check(&out.repair, &sigma), "{pick:?}");
        }
    }

    #[test]
    fn variable_conflict_merges_classes() {
        // Two tuples agree on a wildcard-matched LHS but differ on a
        // wildcard RHS: resolution must merge and instantiate one value.
        let schema = Schema::new("r", &["k", "v"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        rel.insert(Tuple::from_iter(["key1", "alpha"])).unwrap();
        rel.insert(Tuple::from_iter(["key1", "alphq"])).unwrap();
        let fd = Cfd::standard_fd(
            "kv",
            vec![schema.attr("k").unwrap()],
            vec![schema.attr("v").unwrap()],
        );
        let sigma = Sigma::normalize(schema.clone(), vec![fd]).unwrap();
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert!(cfd_cfd::check(&out.repair, &sigma));
        assert!(out.stats.merges >= 1);
        let v = schema.attr("v").unwrap();
        let v0 = out.repair.tuple(TupleId(0)).unwrap().value(v).clone();
        let v1 = out.repair.tuple(TupleId(1)).unwrap().value(v).clone();
        assert_eq!(v0, v1);
        assert!(v0 == Value::str("alpha") || v0 == Value::str("alphq"));
    }

    #[test]
    fn weights_steer_instantiation_choice() {
        // Same conflict, but one side carries much higher confidence: the
        // instantiated value must be the trusted one.
        let schema = Schema::new("r", &["k", "v"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        let mut t0 = Tuple::from_iter(["key1", "alpha"]);
        t0.set_weight(AttrId(1), 0.95);
        let mut t1 = Tuple::from_iter(["key1", "beta"]);
        t1.set_weight(AttrId(1), 0.05);
        rel.insert(t0).unwrap();
        rel.insert(t1).unwrap();
        let fd = Cfd::standard_fd(
            "kv",
            vec![schema.attr("k").unwrap()],
            vec![schema.attr("v").unwrap()],
        );
        let sigma = Sigma::normalize(schema.clone(), vec![fd]).unwrap();
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        let v = schema.attr("v").unwrap();
        assert_eq!(
            out.repair.tuple(TupleId(0)).unwrap().value(v),
            Value::str("alpha")
        );
        assert_eq!(
            out.repair.tuple(TupleId(1)).unwrap().value(v),
            Value::str("alpha")
        );
    }

    #[test]
    fn conflicting_constants_fall_back_to_lhs_change() {
        // One tuple matches two constant CFDs that demand different RHS
        // values; the RHS class gets pinned by one, the other must rewrite
        // the LHS (or null it).
        let schema = Schema::new("r", &["a", "b", "c"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        rel.insert(Tuple::from_iter(["a1", "b1", "X"])).unwrap();
        // a=a1 → c=c1; b=b1 → c=c2: irreconcilable for (a1, b1, _).
        let c1 = Cfd::new(
            "ac",
            vec![schema.attr("a").unwrap()],
            vec![schema.attr("c").unwrap()],
            vec![PatternRow::new(
                vec![PatternValue::constant("a1")],
                vec![PatternValue::constant("c1")],
            )],
        )
        .unwrap();
        let c2 = Cfd::new(
            "bc",
            vec![schema.attr("b").unwrap()],
            vec![schema.attr("c").unwrap()],
            vec![PatternRow::new(
                vec![PatternValue::constant("b1")],
                vec![PatternValue::constant("c2")],
            )],
        )
        .unwrap();
        let sigma = Sigma::normalize(schema, vec![c1, c2]).unwrap();
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert!(cfd_cfd::check(&out.repair, &sigma));
        assert!(out.stats.nulls_set >= 1); // single tuple: null is the only out
    }

    #[test]
    fn findv_tie_breaks_by_pool_frequency() {
        // One constant CFD k=fqv1 → c=fqc-good. t0 = (fqv1, fqc-other)
        // violates; the cheap resolution is rewriting k via FINDV. Both
        // candidate keys (fqv2, fqv3) are one edit from fqv1, same length,
        // same weight, zero residual — an exact (residual, cost) tie. The
        // pool's interning counters must break it toward the globally most
        // frequent value, beating the S-group's first-seen order (the
        // minority tuple is inserted first).
        let schema = Schema::new("r", &["k", "c"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        let mk = |k: &str| {
            let mut t = Tuple::from_iter([k, "fqc-other"]);
            t.set_weight(AttrId(0), 0.3); // cheap LHS rewrite
            t.set_weight(AttrId(1), 1.0); // precious RHS
            t
        };
        rel.insert(mk("fqv3")).unwrap(); // minority candidate, seen first
        let t0 = rel.insert(mk("fqv1")).unwrap(); // the violator
        for _ in 0..3 {
            rel.insert(mk("fqv2")).unwrap(); // majority candidate
        }
        let cfd = Cfd::new(
            "kc",
            vec![schema.attr("k").unwrap()],
            vec![schema.attr("c").unwrap()],
            vec![PatternRow::new(
                vec![PatternValue::constant("fqv1")],
                vec![PatternValue::constant("fqc-good")],
            )],
        )
        .unwrap();
        let sigma = Sigma::normalize(schema.clone(), vec![cfd]).unwrap();
        // Brute-force most-common candidate among the S-group's keys.
        let k = schema.attr("k").unwrap();
        let mut counts: std::collections::HashMap<ValueId, usize> = HashMap::new();
        for (id, t) in rel.iter() {
            if id != t0 {
                *counts.entry(t.id(k)).or_insert(0) += 1;
            }
        }
        let brute = counts
            .into_iter()
            .max_by_key(|(_, n)| *n)
            .map(|(v, _)| v)
            .unwrap();
        assert_eq!(brute.value(), Value::str("fqv2"));
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert!(cfd_cfd::check(&out.repair, &sigma));
        assert_eq!(
            out.repair.tuple(t0).unwrap().value(k),
            brute.value(),
            "FINDV must pick the most frequent candidate on a cost tie"
        );
    }

    #[test]
    fn stats_count_operations() {
        let (rel, sigma) = fig1();
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert_eq!(
            out.stats.steps,
            out.stats.merges + out.stats.nulls_set + out.stats.consts_set
        );
        assert!(out.stats.consts_set + out.stats.merges >= 2); // at least t3's CT/ST
    }

    #[test]
    fn empty_relation_and_empty_sigma() {
        let schema = Schema::new("r", &["a"]).unwrap();
        let rel = Relation::new(schema.clone());
        let sigma = Sigma::normalize(schema, vec![]).unwrap();
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert_eq!(out.repair.len(), 0);
        assert_eq!(out.stats.steps, 0);
    }
}
