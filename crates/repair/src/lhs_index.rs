//! LHS-indices (§5.2, "LHS-indices").
//!
//! For each normal CFD `(R: X → A, tp)` over a *clean* repair `Repr`, the
//! index maps the key `t[X]` to the (unique, because `Repr |= Σ`) non-null
//! `A` value of the tuples carrying that key. A candidate tuple `t'` is
//! then validated in O(|X|) per CFD: look up `t'[X]`, compare `t'[A]`.
//! Keys are [`IdKey`]s and pins are [`ValueId`]s — every probe hashes and
//! compares a handful of integers.
//!
//! * Constant CFDs need no table at all — the pattern itself decides — so
//!   the index stores tables only for variable CFDs.
//! * Group bookkeeping keeps per-key counts so tuples can be added as the
//!   incremental repair grows `Repr` one repaired tuple at a time.

use std::collections::HashMap;

use cfd_model::{IdKey, Relation, TupleView, ValueId};

use cfd_cfd::{NormalCfd, Sigma};

use crate::shard::{shard_of, Parallelism};

/// Per-key state of one variable CFD's group.
#[derive(Clone, Copy, Debug, Default)]
struct GroupState {
    /// The unique non-null RHS id seen in the group, with its count.
    value: Option<(ValueId, usize)>,
    /// Number of group members whose RHS is null.
    nulls: usize,
}

/// The LHS-index of one `(X, A)` shape shared by every variable normal
/// CFD with that shape.
///
/// The index is *unfiltered* — it covers all tuples, not just those
/// matching a particular pattern row. That is sound because pattern
/// applicability on the LHS depends only on `t[X]`, which is exactly the
/// group key: every member of a group has the same pattern status, so a
/// pattern-matching probe only ever meets pattern-matching partners.
/// Sharing collapses the hundreds of tableau rows of the experiment Σ into
/// one table per structural shape.
#[derive(Clone, Debug)]
pub struct LhsIndex {
    map: HashMap<IdKey, GroupState>,
}

/// The LHS-indices for the variable CFDs in Σ, shared by shape.
#[derive(Debug)]
pub struct LhsIndexes {
    /// One index per distinct `(lhs attrs, rhs attr)` among variable CFDs.
    shapes: HashMap<(Vec<cfd_model::AttrId>, cfd_model::AttrId), LhsIndex>,
    /// Determinism tripwire, mirroring `GroupIndexes`: while a parallel
    /// phase shares this structure read-only across worker threads (the
    /// V-INCREPAIR ordering scan, speculative planning on snapshots),
    /// growing a group from a worker would make pin outcomes depend on
    /// scheduling. `freeze` arms the wire; `insert` panics while armed —
    /// index growth must happen on the main state, in resolution order.
    frozen: std::sync::atomic::AtomicBool,
}

impl Clone for LhsIndexes {
    fn clone(&self) -> Self {
        // Clones start thawed: the wire guards one shared instance
        // during one phase, not its descendants.
        LhsIndexes {
            shapes: self.shapes.clone(),
            frozen: std::sync::atomic::AtomicBool::new(false),
        }
    }
}

/// Outcome of validating a candidate RHS value against a group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupVerdict {
    /// No tuple with this key (or only null RHS values): any value works.
    Unconstrained,
    /// The group pins the RHS to this id; candidates must equal it (or be
    /// null).
    Pinned(ValueId),
}

impl LhsIndex {
    fn build(rel: &Relation, lhs: &[cfd_model::AttrId], rhs_attr: cfd_model::AttrId) -> Self {
        let mut map: HashMap<IdKey, GroupState> = HashMap::new();
        for (_, t) in rel.iter() {
            let key = t.project_key(lhs);
            let state = map.entry(key).or_default();
            Self::account(state, t.id(rhs_attr), 1);
        }
        LhsIndex { map }
    }

    fn account(state: &mut GroupState, v: ValueId, delta: i64) {
        if v.is_null() {
            state.nulls = (state.nulls as i64 + delta) as usize;
            return;
        }
        match &mut state.value {
            Some((existing, count)) if *existing == v => {
                *count = (*count as i64 + delta) as usize;
                if *count == 0 {
                    state.value = None;
                }
            }
            Some(_) => {
                // A clean relation never reaches here; tolerate by keeping
                // the existing pin (the relation is about to be repaired).
                debug_assert!(delta > 0, "removal of unseen value");
            }
            None if delta > 0 => state.value = Some((v, delta as usize)),
            None => {}
        }
    }

    /// What does the group of `t` (by its `X` projection) require?
    fn verdict<V: TupleView + ?Sized>(&self, n: &NormalCfd, t: &V) -> GroupVerdict {
        match self.map.get(&t.project_key(n.lhs())) {
            Some(GroupState {
                value: Some((v, _)),
                ..
            }) => GroupVerdict::Pinned(*v),
            _ => GroupVerdict::Unconstrained,
        }
    }
}

/// Relation size below which a sharded build is not worth the thread
/// spawn overhead.
const PARALLEL_BUILD_THRESHOLD: usize = 4_096;

impl LhsIndexes {
    fn with_shapes(shapes: HashMap<(Vec<cfd_model::AttrId>, cfd_model::AttrId), LhsIndex>) -> Self {
        LhsIndexes {
            shapes,
            frozen: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Arm the mutation tripwire for the duration of a read-only parallel
    /// phase. Takes `&self` so already-shared references can arm it.
    pub fn freeze(&self) {
        self.frozen
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Disarm the tripwire once exclusive access is re-established.
    pub fn thaw(&self) {
        self.frozen
            .store(false, std::sync::atomic::Ordering::Release);
    }

    /// Build indices for every variable-CFD shape in `sigma` over `rel`.
    pub fn build(rel: &Relation, sigma: &Sigma) -> Self {
        Self::build_with(rel, sigma, &Parallelism::serial())
    }

    /// [`LhsIndexes::build`] sharded by LHS-key hash range across `par`
    /// worker threads, in the same two-phase shape as the group census:
    /// contiguous id chunks fan out to extract `(shard, key, rhs)` entries
    /// (each key projected and hashed exactly once), then shard ranges fan
    /// out to fold exactly their own entries. Each group key lands wholly
    /// inside one shard and entries stay in ascending id order, so the
    /// disjoint-map union is bit-identical to a serial build at every
    /// thread count.
    pub fn build_with(rel: &Relation, sigma: &Sigma, par: &Parallelism) -> Self {
        let shape_list: Vec<(Vec<cfd_model::AttrId>, cfd_model::AttrId)> = {
            let mut seen = Vec::new();
            for n in sigma.iter().filter(|n| !n.is_constant()) {
                let shape = (n.lhs().to_vec(), n.rhs_attr());
                if !seen.contains(&shape) {
                    seen.push(shape);
                }
            }
            seen
        };
        let threads = par.get();
        if threads <= 1 || rel.len() < PARALLEL_BUILD_THRESHOLD {
            let shapes = shape_list
                .into_iter()
                .map(|(lhs, rhs)| {
                    let idx = LhsIndex::build(rel, &lhs, rhs);
                    ((lhs, rhs), idx)
                })
                .collect();
            return LhsIndexes::with_shapes(shapes);
        }
        // Phase 1: extract `[shape][shard]` entry lists over id chunks.
        type EntryLists = Vec<Vec<Vec<(IdKey, ValueId)>>>;
        let ids: Vec<cfd_model::TupleId> = rel.ids().collect();
        let chunk = ids.len().div_ceil(threads).max(1);
        let chunked: Vec<EntryLists> = std::thread::scope(|s| {
            let shape_list = &shape_list;
            let handles: Vec<_> = ids
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        let mut out: EntryLists = (0..shape_list.len())
                            .map(|_| {
                                (0..threads)
                                    .map(|_| Vec::with_capacity(part.len() / threads + 1))
                                    .collect()
                            })
                            .collect();
                        for id in part {
                            let t = rel.tuple(*id).expect("listed id is live");
                            for ((lhs, rhs_attr), entries) in shape_list.iter().zip(out.iter_mut())
                            {
                                let key = t.project_key(lhs);
                                let shard = shard_of(key.as_slice(), threads);
                                entries[shard].push((key, t.id(*rhs_attr)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lhs-index extract shard panicked"))
                .collect()
        });
        // Regroup into per-shard work lists (chunk order keeps each list
        // id-ascending, matching the serial accounting order).
        let mut per_shard: Vec<Vec<Vec<(IdKey, ValueId)>>> = (0..threads)
            .map(|_| (0..shape_list.len()).map(|_| Vec::new()).collect())
            .collect();
        for mut part in chunked {
            for (si, shard_lists) in part.iter_mut().enumerate() {
                for (shard, from) in shard_lists.iter_mut().enumerate() {
                    per_shard[shard][si].append(from);
                }
            }
        }
        // Phase 2: fold each shard's entries into its own maps.
        let parts: Vec<Vec<HashMap<IdKey, GroupState>>> = std::thread::scope(|s| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .map(|mine| {
                    s.spawn(move || {
                        mine.into_iter()
                            .map(|entries| {
                                let mut map: HashMap<IdKey, GroupState> = HashMap::new();
                                for (key, v) in entries {
                                    LhsIndex::account(map.entry(key).or_default(), v, 1);
                                }
                                map
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lhs-index insert shard panicked"))
                .collect()
        });
        // Disjoint-key union per shape: a key lives wholly inside the
        // shard its hash selects.
        let mut shapes: HashMap<_, LhsIndex> = shape_list
            .iter()
            .cloned()
            .map(|shape| {
                (
                    shape,
                    LhsIndex {
                        map: HashMap::new(),
                    },
                )
            })
            .collect();
        for part in parts {
            for (shape, from) in shape_list.iter().zip(part) {
                let idx = shapes.get_mut(shape).expect("shape registered above");
                debug_assert!(from.keys().all(|k| !idx.map.contains_key(k)));
                idx.map.extend(from);
            }
        }
        LhsIndexes::with_shapes(shapes)
    }

    /// Register a tuple newly inserted into the clean repair.
    pub fn insert<V: TupleView + ?Sized>(&mut self, _sigma: &Sigma, t: &V) {
        assert!(
            !self.frozen.load(std::sync::atomic::Ordering::Acquire),
            "LhsIndexes::insert during a frozen (read-only parallel) phase: \
             index growth must run on the main state in resolution order"
        );
        for ((lhs, rhs_attr), idx) in self.shapes.iter_mut() {
            let key = t.project_key(lhs);
            let state = idx.map.entry(key).or_default();
            LhsIndex::account(state, t.id(*rhs_attr), 1);
        }
    }

    /// Drop a tuple from every shape's group, given its *current*
    /// contents (call before the relation deletes it). The inverse of
    /// [`LhsIndexes::insert`]: group counts decrement, and a pin whose
    /// count reaches zero clears, so a later insert can re-pin the group
    /// to a different value. Sound only for tuples of the indexed clean
    /// portion — every non-null RHS in a group equals the pin there.
    pub fn remove<V: TupleView + ?Sized>(&mut self, _sigma: &Sigma, t: &V) {
        assert!(
            !self.frozen.load(std::sync::atomic::Ordering::Acquire),
            "LhsIndexes::remove during a frozen (read-only parallel) phase: \
             index maintenance must run on the main state in event order"
        );
        for ((lhs, rhs_attr), idx) in self.shapes.iter_mut() {
            let key = t.project_key(lhs);
            if let Some(state) = idx.map.get_mut(&key) {
                LhsIndex::account(state, t.id(*rhs_attr), -1);
            }
        }
    }

    /// Does the candidate tuple `t` satisfy normal CFD `n` against the
    /// indexed relation? Checks both the pattern (constant CFDs) and the
    /// group pin (variable CFDs). §3.1's null semantics apply: a null among
    /// `t[X]` means the CFD is inapplicable; a null RHS satisfies.
    pub fn satisfies<V: TupleView + ?Sized>(&self, n: &NormalCfd, t: &V) -> bool {
        if !n.applies_to(t) {
            return true;
        }
        let v = t.id(n.rhs_attr());
        if n.is_constant() {
            return n.rhs_pattern_id().satisfied_by_id(v);
        }
        if v.is_null() {
            return true;
        }
        match self
            .shapes
            .get(&(n.lhs().to_vec(), n.rhs_attr()))
            .expect("variable CFD has a shape index")
            .verdict(n, t)
        {
            GroupVerdict::Unconstrained => true,
            GroupVerdict::Pinned(pin) => v == pin,
        }
    }

    /// The id (if any) a variable CFD's group pins for `t`'s key — the
    /// "semantically related value" FINDV reaches for first.
    pub fn pinned_id<V: TupleView + ?Sized>(&self, n: &NormalCfd, t: &V) -> Option<ValueId> {
        if n.is_constant() || !n.applies_to(t) {
            return None;
        }
        match self
            .shapes
            .get(&(n.lhs().to_vec(), n.rhs_attr()))?
            .verdict(n, t)
        {
            GroupVerdict::Pinned(v) => Some(v),
            GroupVerdict::Unconstrained => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_cfd::pattern::{PatternRow, PatternValue};
    use cfd_cfd::Cfd;
    use cfd_model::{Schema, Tuple, Value};

    fn vid(s: &str) -> ValueId {
        ValueId::of(&Value::str(s))
    }

    fn setup() -> (Relation, Sigma) {
        let schema = Schema::new("r", &["ac", "pn", "ct"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        for row in [
            ["212", "111", "NYC"],
            ["610", "222", "PHI"],
            ["610", "333", "PHI"],
        ] {
            rel.insert(Tuple::from_iter(row)).unwrap();
        }
        // variable CFD: [ac] → ct with wildcard pattern
        let var = Cfd::standard_fd(
            "var",
            vec![schema.attr("ac").unwrap()],
            vec![schema.attr("ct").unwrap()],
        );
        // constant CFD: ac=212 → ct=NYC
        let cons = Cfd::new(
            "cons",
            vec![schema.attr("ac").unwrap()],
            vec![schema.attr("ct").unwrap()],
            vec![PatternRow::new(
                vec![PatternValue::constant("212")],
                vec![PatternValue::constant("NYC")],
            )],
        )
        .unwrap();
        let sigma = Sigma::normalize(schema, vec![var, cons]).unwrap();
        (rel, sigma)
    }

    #[test]
    fn variable_cfd_pins_group_value() {
        let (rel, sigma) = setup();
        let idx = LhsIndexes::build(&rel, &sigma);
        let var = sigma.get(cfd_cfd::CfdId(0));
        // candidate agreeing with 212's group
        let ok = Tuple::from_iter(["212", "999", "NYC"]);
        assert!(idx.satisfies(var, &ok));
        let bad = Tuple::from_iter(["212", "999", "PHI"]);
        assert!(!idx.satisfies(var, &bad));
        assert_eq!(idx.pinned_id(var, &bad), Some(vid("NYC")));
        // fresh key: unconstrained
        let fresh = Tuple::from_iter(["415", "999", "SF"]);
        assert!(idx.satisfies(var, &fresh));
        assert_eq!(idx.pinned_id(var, &fresh), None);
    }

    #[test]
    fn constant_cfd_checked_by_pattern_alone() {
        let (rel, sigma) = setup();
        let idx = LhsIndexes::build(&rel, &sigma);
        let cons = sigma.get(cfd_cfd::CfdId(1));
        assert!(cons.is_constant());
        let ok = Tuple::from_iter(["212", "999", "NYC"]);
        let bad = Tuple::from_iter(["212", "999", "PHI"]);
        let inapplicable = Tuple::from_iter(["610", "999", "PHI"]);
        assert!(idx.satisfies(cons, &ok));
        assert!(!idx.satisfies(cons, &bad));
        assert!(idx.satisfies(cons, &inapplicable));
    }

    #[test]
    fn null_semantics() {
        let (rel, sigma) = setup();
        let idx = LhsIndexes::build(&rel, &sigma);
        let var = sigma.get(cfd_cfd::CfdId(0));
        let cons = sigma.get(cfd_cfd::CfdId(1));
        // null RHS satisfies both kinds
        let null_rhs = Tuple::new(vec![Value::str("212"), Value::str("9"), Value::Null]);
        assert!(idx.satisfies(var, &null_rhs));
        assert!(idx.satisfies(cons, &null_rhs));
        // null LHS: CFD inapplicable
        let null_lhs = Tuple::new(vec![Value::Null, Value::str("9"), Value::str("PHI")]);
        assert!(idx.satisfies(var, &null_lhs));
        assert!(idx.satisfies(cons, &null_lhs));
    }

    #[test]
    fn insert_updates_groups() {
        let (rel, sigma) = setup();
        let mut idx = LhsIndexes::build(&rel, &sigma);
        let var = sigma.get(cfd_cfd::CfdId(0));
        let fresh = Tuple::from_iter(["415", "1", "SF"]);
        assert_eq!(idx.pinned_id(var, &fresh), None);
        idx.insert(&sigma, &fresh);
        let probe = Tuple::from_iter(["415", "2", "LA"]);
        assert_eq!(idx.pinned_id(var, &probe), Some(vid("SF")));
        assert!(!idx.satisfies(var, &probe));
    }

    #[test]
    fn remove_undoes_insert_and_releases_pins() {
        let (rel, sigma) = setup();
        let mut idx = LhsIndexes::build(&rel, &sigma);
        let var = sigma.get(cfd_cfd::CfdId(0));
        let fresh = Tuple::from_iter(["415", "1", "SF"]);
        idx.insert(&sigma, &fresh);
        let probe = Tuple::from_iter(["415", "2", "LA"]);
        assert_eq!(idx.pinned_id(var, &probe), Some(vid("SF")));
        // Removing the only member clears the pin entirely.
        idx.remove(&sigma, &fresh);
        assert_eq!(idx.pinned_id(var, &probe), None);
        assert!(idx.satisfies(var, &probe));
        // A later insert re-pins the group to the new value.
        idx.insert(&sigma, &probe);
        assert_eq!(idx.pinned_id(var, &fresh), Some(vid("LA")));
        // Counts are per-member: with two members, one removal keeps the pin.
        idx.insert(&sigma, &Tuple::from_iter(["415", "3", "LA"]));
        idx.remove(&sigma, &probe);
        assert_eq!(idx.pinned_id(var, &fresh), Some(vid("LA")));
    }

    #[test]
    fn sharded_build_matches_serial() {
        // Enough tuples to cross the sharded-build threshold; every pin
        // and verdict must agree with the serial build at any count.
        let schema = Schema::new("r", &["k", "v"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        for i in 0..5_000u32 {
            let v = if i % 17 == 0 {
                Value::Null
            } else {
                Value::str(format!("v{}", i % 97))
            };
            rel.insert(Tuple::new(vec![Value::str(format!("k{}", i % 97)), v]))
                .unwrap();
        }
        let fd = Cfd::standard_fd(
            "kv",
            vec![schema.attr("k").unwrap()],
            vec![schema.attr("v").unwrap()],
        );
        let sigma = Sigma::normalize(schema, vec![fd]).unwrap();
        let serial = LhsIndexes::build(&rel, &sigma);
        let var = sigma.get(cfd_cfd::CfdId(0));
        for threads in [2, 3, 8] {
            let sharded = LhsIndexes::build_with(&rel, &sigma, &Parallelism::threads(threads));
            for (_, t) in rel.iter() {
                assert_eq!(
                    serial.pinned_id(var, &t),
                    sharded.pinned_id(var, &t),
                    "threads={threads}"
                );
                assert_eq!(
                    serial.satisfies(var, &t),
                    sharded.satisfies(var, &t),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "LhsIndexes::insert during a frozen")]
    fn frozen_indexes_reject_insert() {
        let (rel, sigma) = setup();
        let mut idx = LhsIndexes::build(&rel, &sigma);
        idx.freeze();
        idx.insert(&sigma, &Tuple::from_iter(["415", "1", "SF"]));
    }

    #[test]
    fn thaw_reenables_insert_and_clones_start_thawed() {
        let (rel, sigma) = setup();
        let mut idx = LhsIndexes::build(&rel, &sigma);
        idx.freeze();
        idx.thaw();
        idx.insert(&sigma, &Tuple::from_iter(["415", "1", "SF"]));
        idx.freeze();
        let mut copy = idx.clone();
        copy.insert(&sigma, &Tuple::from_iter(["510", "2", "OAK"]));
        idx.thaw();
    }

    #[test]
    fn null_only_group_is_unconstrained() {
        let (mut rel, sigma) = setup();
        rel.set_value(cfd_model::TupleId(0), cfd_model::AttrId(2), Value::Null)
            .unwrap();
        let idx = LhsIndexes::build(&rel, &sigma);
        let var = sigma.get(cfd_cfd::CfdId(0));
        let probe = Tuple::from_iter(["212", "9", "ANY"]);
        assert!(idx.satisfies(var, &probe));
    }
}
