//! Cost-based candidate-value index (§5.2, "Cost-based indices").
//!
//! The paper arranges `adom(Repr, A)` in a hierarchical-agglomerative-
//! clustering tree over the DL metric so that `TUPLERESOLVE` can iterate
//! candidate values in decreasing similarity to the value being repaired.
//! We keep the *contract* — enumerate active-domain values in (approximately)
//! increasing DL distance from a probe, cheaply — but implement it as a
//! **length-banded exact search**: values are bucketed by rendered length,
//! and a query expands outward from the probe's length band, scoring values
//! with the cutoff-aware DL kernel and abandoning candidates whose distance
//! provably exceeds the current `limit`-th best. Because
//! `dis(a, b) ≥ ||a| − |b||`, bands farther than the current worst bound can
//! be skipped wholesale; the search is exact, needs no O(n²) build, and
//! degrades gracefully on large domains. DESIGN.md records this substitution;
//! the `repair_ablations` bench compares it against the naive full scan.
//!
//! Entries carry `(Value, ValueId)` pairs: the resolved value keeps
//! enumeration order deterministic (ties break by *value* order, which is
//! independent of interning history), while callers receive the interned
//! id they feed straight into the id-encoded candidate machinery.

use std::collections::BTreeMap;
use std::sync::Arc;

use cfd_model::{ActiveDomain, AttrId, Value, ValueId, ValuePool};

/// A queryable view of one attribute's active domain.
#[derive(Clone, Debug)]
pub struct ValueIndex {
    /// Distinct values bucketed by rendered length, each bucket sorted by
    /// value for determinism.
    by_len: BTreeMap<usize, Vec<(Value, ValueId)>>,
    len: usize,
    /// The pool probe ids and [`ValueIndex::add`]ed ids resolve through —
    /// the pool of the relation whose active domain this indexes.
    pool: Arc<ValuePool>,
}

impl Default for ValueIndex {
    fn default() -> Self {
        ValueIndex {
            by_len: BTreeMap::new(),
            len: 0,
            pool: ValuePool::shared(),
        }
    }
}

impl ValueIndex {
    /// Build from the distinct values of `adom(a, D)`, resolving through
    /// the process-default shared pool (compatibility shim; see
    /// [`ValueIndex::build_in`]).
    pub fn build(adom: &ActiveDomain, a: AttrId) -> Self {
        Self::build_in(adom, a, ValuePool::shared())
    }

    /// Build from the distinct values of `adom(a, D)`, resolving through
    /// the owning relation's pool.
    pub fn build_in(adom: &ActiveDomain, a: AttrId, pool: Arc<ValuePool>) -> Self {
        Self::from_ids_in(adom.ids(a).map(|(id, _)| id), pool)
    }

    /// Build directly from interned ids in the process-default shared
    /// pool (compatibility shim; see [`ValueIndex::from_ids_in`]).
    pub fn from_ids<I: IntoIterator<Item = ValueId>>(ids: I) -> Self {
        Self::from_ids_in(ids, ValuePool::shared())
    }

    /// Build directly from ids interned in `pool`.
    pub fn from_ids_in<I: IntoIterator<Item = ValueId>>(ids: I, pool: Arc<ValuePool>) -> Self {
        let mut distinct: Vec<(Value, ValueId)> =
            ids.into_iter().map(|id| (pool.resolve(id), id)).collect();
        distinct.sort();
        distinct.dedup();
        let mut by_len: BTreeMap<usize, Vec<(Value, ValueId)>> = BTreeMap::new();
        let len = distinct.len();
        for (v, id) in distinct {
            by_len.entry(v.render_len()).or_default().push((v, id));
        }
        ValueIndex { by_len, len, pool }
    }

    /// Build directly from values (tests, ad-hoc pools), interning into
    /// the process-default shared pool.
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Self {
        Self::from_ids(values.into_iter().map(|v| ValueId::of(&v)))
    }

    /// Number of distinct values indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Record a value newly added to the domain.
    pub fn add(&mut self, id: ValueId) {
        if id.is_null() {
            return;
        }
        let v = self.pool.resolve(id);
        let bucket = self.by_len.entry(v.render_len()).or_default();
        let entry = (v, id);
        if let Err(pos) = bucket.binary_search(&entry) {
            bucket.insert(pos, entry);
            self.len += 1;
        }
    }

    /// The `limit` ids nearest to `probe` in DL distance, ascending (ties
    /// broken by value order). `probe` itself is excluded when
    /// `exclude_probe` — repairs must pick a *different* value.
    pub fn nearest(
        &self,
        probe: ValueId,
        limit: usize,
        exclude_probe: bool,
    ) -> Vec<(ValueId, usize)> {
        if limit == 0 || self.len == 0 {
            return Vec::new();
        }
        let probe_value = self.pool.resolve(probe);
        let probe_text = probe_value.render().into_owned();
        let probe_len = probe_value.render_len();
        // One prepared kernel for the probe: its pattern bitmasks are
        // built once and reused against every bucket entry, instead of a
        // fresh DP matrix per pair.
        let pricer = crate::pricing::TargetPricer::new(&probe_text);
        // Max-heap by (distance, value) capped at `limit`; implemented as a
        // sorted Vec because `limit` is small (≤ a few dozen).
        let mut best: Vec<(usize, &Value, ValueId)> = Vec::with_capacity(limit + 1);
        let mut worst_bound = usize::MAX;
        // Expand outward from the probe's length band.
        let mut offsets: Vec<i64> = Vec::new();
        let max_len = self.by_len.keys().next_back().copied().unwrap_or(0) as i64;
        for d in 0..=max_len.max(probe_len as i64) {
            if d == 0 {
                offsets.push(0);
            } else {
                offsets.push(d);
                offsets.push(-d);
            }
        }
        for off in offsets {
            let band = probe_len as i64 + off;
            if band < 0 {
                continue;
            }
            // Length difference is a lower bound on the distance: once the
            // band gap alone exceeds the worst kept distance, no farther
            // band can contribute.
            if best.len() >= limit && off.unsigned_abs() as usize > worst_bound {
                break;
            }
            let Some(bucket) = self.by_len.get(&(band as usize)) else {
                continue;
            };
            for (v, id) in bucket {
                if exclude_probe && *id == probe {
                    continue;
                }
                let cutoff = if best.len() >= limit {
                    worst_bound
                } else {
                    usize::MAX - 1
                };
                let Some(d) = pricer.distance_bounded(&v.render(), cutoff) else {
                    continue;
                };
                let entry = (d, v, *id);
                let pos = best.partition_point(|e| *e <= entry);
                best.insert(pos, entry);
                if best.len() > limit {
                    best.pop();
                }
                if best.len() >= limit {
                    worst_bound = best.last().expect("non-empty").0;
                }
            }
        }
        best.into_iter().map(|(d, _, id)| (id, d)).collect()
    }

    /// Naive full-scan nearest (no banding, no cutoff). Kept for the
    /// ablation benchmark and as a correctness oracle in tests.
    pub fn nearest_naive(
        &self,
        probe: ValueId,
        limit: usize,
        exclude_probe: bool,
    ) -> Vec<(ValueId, usize)> {
        let probe_text = self.pool.resolve(probe).render().into_owned();
        let mut all: Vec<(usize, &Value, ValueId)> = self
            .by_len
            .values()
            .flatten()
            .filter(|(_, id)| !(exclude_probe && *id == probe))
            .map(|(v, id)| {
                (
                    crate::distance::dl_distance(&probe_text, &v.render()),
                    v,
                    *id,
                )
            })
            .collect();
        all.sort();
        all.truncate(limit);
        all.into_iter().map(|(d, _, id)| (id, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(s: &str) -> ValueId {
        ValueId::of(&Value::str(s))
    }

    fn idx(values: &[&str]) -> ValueIndex {
        ValueIndex::from_values(values.iter().map(|s| Value::str(*s)))
    }

    #[test]
    fn nearest_orders_by_distance() {
        let i = idx(&["walnut", "walnot", "spruce", "broad", "walnuts"]);
        let got = i.nearest(vid("walnut"), 3, false);
        assert_eq!(got[0], (vid("walnut"), 0));
        assert_eq!(got[1].1, 1); // walnot or walnuts
        assert_eq!(got[2].1, 1);
    }

    #[test]
    fn exclude_probe_skips_exact_match() {
        let i = idx(&["walnut", "walnot"]);
        let got = i.nearest(vid("walnut"), 2, true);
        assert_eq!(got, vec![(vid("walnot"), 1)]);
    }

    #[test]
    fn agrees_with_naive_oracle() {
        let words = [
            "19014", "10012", "19103", "10013", "60601", "94105", "2146", "215", "212", "610",
            "null-ish", "walnut", "spruce",
        ];
        let i = idx(&words);
        for probe in ["19014", "212", "walnut", "zzz", ""] {
            let fast = i.nearest(vid(probe), 5, false);
            let slow = i.nearest_naive(vid(probe), 5, false);
            let fast_d: Vec<usize> = fast.iter().map(|(_, d)| *d).collect();
            let slow_d: Vec<usize> = slow.iter().map(|(_, d)| *d).collect();
            assert_eq!(fast_d, slow_d, "probe {probe}");
        }
    }

    #[test]
    fn add_keeps_index_queryable() {
        let mut i = idx(&["abc"]);
        i.add(vid("abd"));
        i.add(vid("abd")); // duplicate ignored
        i.add(cfd_model::NULL_ID); // nulls ignored
        assert_eq!(i.len(), 2);
        let got = i.nearest(vid("abd"), 1, false);
        assert_eq!(got[0], (vid("abd"), 0));
    }

    #[test]
    fn empty_index_returns_nothing() {
        let i = ValueIndex::default();
        assert!(i.nearest(vid("x"), 3, false).is_empty());
        assert!(i.is_empty());
    }

    #[test]
    fn limit_zero_returns_nothing() {
        let i = idx(&["a"]);
        assert!(i.nearest(vid("a"), 0, false).is_empty());
    }

    #[test]
    fn build_from_active_domain() {
        use cfd_model::{Relation, Schema, Tuple};
        let schema = Schema::new("r", &["ct"]).unwrap();
        let mut rel = Relation::new(schema);
        for city in ["PHI", "NYC", "PHX"] {
            rel.insert(Tuple::from_iter([city])).unwrap();
        }
        let adom = ActiveDomain::of_relation(&rel);
        let i = ValueIndex::build(&adom, AttrId(0));
        let got = i.nearest(vid("PHI"), 2, true);
        assert_eq!(got[0], (vid("PHX"), 1));
        assert_eq!(got[1], (vid("NYC"), 3));
    }

    #[test]
    fn int_values_searchable_by_rendering() {
        let i = ValueIndex::from_values([Value::int(19014), Value::int(10012)]);
        let got = i.nearest(vid("19013"), 1, false);
        assert_eq!(got[0].0, ValueId::of(&Value::int(19014)));
    }
}
