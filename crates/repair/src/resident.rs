//! Resident `INCREPAIR` driver for streaming sessions.
//!
//! A one-shot [`crate::inc_repair`] rebuilds every index per call — fine
//! for a batch, ruinous for a stream that repairs a small ΔD every window.
//! [`StreamRepairer`] keeps the whole `IncState` machinery warm between
//! repair rounds: the violation-engine group indexes (as owned
//! `EngineParts`), the LHS-indices, the active domain, the lazily-built
//! nearest-value indexes and the distance memo all persist, and each round
//! reconstitutes a borrowing [`IncState`](crate::incremental::IncState)
//! around them for the duration of one `resolve` call.
//!
//! The determinism contract carries over unchanged: a resume/suspend
//! round-trip moves owned state verbatim, so a stream of rounds repairs
//! byte-identically to one-shot `inc_repair` calls that replayed the same
//! history — the property the stream differential suite pins.
//!
//! Two divergences from the one-shot path, both deliberate:
//!
//! * **Deletions are index maintenance only.** Deletions never violate
//!   CFDs (§3.3), so [`StreamRepairer::remove_active`] drops the tuple
//!   from the relation, the group indexes and the LHS-indices and stops
//!   there — no re-repair of tuples that conflicted with the departed one.
//! * **The active domain is append-only.** Values contributed solely by
//!   since-deleted tuples remain repair *candidates*. Candidates are
//!   suggestions, never obligations (feasibility always re-checks against
//!   live indexes), so this is sound; it keeps removal cheap and the
//!   nearest-value indexes incremental.

use cfd_cfd::Sigma;
use cfd_model::{Relation, Tuple, TupleId};

use crate::incremental::{IncConfig, IncState, IncStats, ResidentParts};
use crate::RepairError;

/// A resident incremental repairer: owns a working relation plus every
/// index `INCREPAIR` needs, across an unbounded sequence of repair rounds.
///
/// Holds no borrow of Σ — each method takes it fresh, so the owner (a
/// session, a daemon) can store the repairer and the [`Sigma`] side by
/// side without self-reference.
///
/// Tuples are in one of two states: **active** (part of the clean
/// portion, visible to every index) or **staged** (inserted into the
/// relation but invisible to the indexes, awaiting
/// [`resolve_pending`](StreamRepairer::resolve_pending)). The caller —
/// the windowing layer — tracks which ids are staged.
pub struct StreamRepairer {
    /// `None` only transiently inside `resolve_pending`; a panic there
    /// leaves the repairer unusable, which the session layer surfaces as
    /// a poisoned dataset.
    parts: Option<ResidentParts>,
    config: IncConfig,
}

impl StreamRepairer {
    /// Build a repairer over a clean base (`D |= Σ`). Cost mirrors one
    /// `IncState::new`: every later round is index-rebuild-free.
    pub fn new(base: Relation, sigma: &Sigma, config: IncConfig) -> Result<Self, RepairError> {
        let state = IncState::new(base, &[], sigma, config.clone())?;
        let (parts, _) = state.suspend();
        Ok(StreamRepairer {
            parts: Some(parts),
            config,
        })
    }

    fn parts(&self) -> &ResidentParts {
        self.parts
            .as_ref()
            .expect("repairer lost in a failed round")
    }

    fn parts_mut(&mut self) -> &mut ResidentParts {
        self.parts
            .as_mut()
            .expect("repairer lost in a failed round")
    }

    /// The working relation: active tuples carry repaired values, staged
    /// tuples their original (possibly dirty) ones.
    pub fn work(&self) -> &Relation {
        &self.parts().work
    }

    /// Stage a tuple: append it to the relation (fresh id, input order)
    /// without touching any index. Staged tuples exert no pressure on
    /// anyone — one dirty arrival must not smear violations over the
    /// innocent members of its groups before resolution assigns blame.
    pub fn stage(&mut self, t: Tuple) -> Result<TupleId, RepairError> {
        Ok(self.parts_mut().work.insert(t)?)
    }

    /// Withdraw a *staged* tuple (an in-window delete cancelling a
    /// not-yet-resolved insert). No index ever saw it, so this is a plain
    /// relation delete. Returns the staged contents.
    pub fn unstage(&mut self, id: TupleId) -> Result<Tuple, RepairError> {
        Ok(self.parts_mut().work.delete(id)?)
    }

    /// Drop an *active* tuple from the relation and every index. See the
    /// module docs for the deletion semantics.
    pub fn remove_active(&mut self, sigma: &Sigma, id: TupleId) -> Result<Tuple, RepairError> {
        self.parts_mut().remove_active(sigma, id)
    }

    /// One repair round: order `pending` (staged ids) per the configured
    /// [`Ordering`](crate::Ordering), resolve each via `TUPLERESOLVE`,
    /// and activate the repaired tuples in every index. `pending` is
    /// reordered in place to the processing order. Returns this round's
    /// counters.
    pub fn resolve_pending(
        &mut self,
        sigma: &Sigma,
        pending: &mut [TupleId],
    ) -> Result<IncStats, RepairError> {
        let parts = self.parts.take().expect("repairer lost in a failed round");
        let mut state = IncState::resume(parts, sigma, self.config.clone());
        state.order_pending(pending);
        let mut failed = None;
        for id in pending.iter() {
            if let Err(e) = state.resolve_and_activate(*id) {
                failed = Some(e);
                break;
            }
        }
        let (parts, stats) = state.suspend();
        self.parts = Some(parts);
        match failed {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_cfd::Cfd;
    use cfd_model::{Schema, Value};

    fn kv_sigma(schema: &Schema) -> Sigma {
        let fd = Cfd::standard_fd(
            "kv",
            vec![schema.attr("k").unwrap()],
            vec![schema.attr("v").unwrap()],
        );
        Sigma::normalize(schema.clone(), vec![fd]).unwrap()
    }

    fn base() -> (Relation, Sigma) {
        let schema = Schema::new("r", &["k", "v"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        rel.insert(Tuple::from_iter(["k0", "alpha"])).unwrap();
        rel.insert(Tuple::from_iter(["k1", "beta"])).unwrap();
        let sigma = kv_sigma(&schema);
        (rel, sigma)
    }

    /// Streamed rounds must equal one-shot `inc_repair` over the same
    /// history: round boundaries are invisible to the repair outcome.
    #[test]
    fn rounds_match_one_shot_inc_repair() {
        let (rel, sigma) = base();
        let d1 = Tuple::from_iter(["k0", "alphb"]); // conflicts with base pin
        let d2 = Tuple::from_iter(["k2", "gamma"]); // clean
        let d3 = Tuple::from_iter(["k2", "gamm"]); // conflicts with d2's pin

        // One-shot references: repair [d1, d2] first, then [d3] on top.
        let cfg = IncConfig::default();
        let one = inc_oneshot(&rel, &[d1.clone(), d2.clone()], &sigma, &cfg);
        let two = inc_oneshot(&one, std::slice::from_ref(&d3), &sigma, &cfg);

        let mut r = StreamRepairer::new(rel, &sigma, cfg).unwrap();
        let mut round1 = vec![r.stage(d1).unwrap(), r.stage(d2).unwrap()];
        r.resolve_pending(&sigma, &mut round1).unwrap();
        let mut round2 = vec![r.stage(d3).unwrap()];
        r.resolve_pending(&sigma, &mut round2).unwrap();

        assert_eq!(r.work().len(), two.len());
        for (id, t) in two.iter() {
            assert_eq!(r.work().tuple(id).unwrap(), t, "tuple {id} diverged");
        }
    }

    fn inc_oneshot(d: &Relation, delta: &[Tuple], sigma: &Sigma, cfg: &IncConfig) -> Relation {
        crate::inc_repair(d, delta, sigma, cfg.clone())
            .unwrap()
            .repair
    }

    /// Deleting an active tuple releases its LHS pin: a later arrival
    /// re-pins the group to its own value instead of the departed one's.
    #[test]
    fn remove_active_releases_group_pin() {
        let (rel, sigma) = base();
        let v = rel.schema().attr("v").unwrap();
        let mut r = StreamRepairer::new(rel, &sigma, IncConfig::default()).unwrap();

        let mut ids = vec![r.stage(Tuple::from_iter(["k9", "delta"])).unwrap()];
        r.resolve_pending(&sigma, &mut ids).unwrap();
        let pinner = ids[0];

        // While the pinner lives, a conflicting arrival follows its value.
        let mut ids = vec![r.stage(Tuple::from_iter(["k9", "delte"])).unwrap()];
        r.resolve_pending(&sigma, &mut ids).unwrap();
        assert_eq!(
            r.work().require(ids[0]).unwrap().value(v),
            Value::str("delta")
        );

        // Remove both members; the group is empty, so the pin must clear.
        r.remove_active(&sigma, pinner).unwrap();
        r.remove_active(&sigma, ids[0]).unwrap();
        let mut ids = vec![r.stage(Tuple::from_iter(["k9", "epsilon"])).unwrap()];
        r.resolve_pending(&sigma, &mut ids).unwrap();
        assert_eq!(
            r.work().require(ids[0]).unwrap().value(v),
            Value::str("epsilon"),
            "stale pin survived removal of every group member"
        );
    }

    /// A staged tuple withdrawn before resolution leaves no trace in any
    /// index — the relation slot dies and later rounds are unaffected.
    #[test]
    fn unstage_cancels_cleanly() {
        let (rel, sigma) = base();
        let mut r = StreamRepairer::new(rel, &sigma, IncConfig::default()).unwrap();
        let id = r.stage(Tuple::from_iter(["k0", "zzz"])).unwrap();
        let t = r.unstage(id).unwrap();
        assert_eq!(t.value(rel_attr(&r, "v")), Value::str("zzz"));
        assert!(r.work().tuple(id).is_none());
        // An empty round is a no-op.
        let stats = r.resolve_pending(&sigma, &mut []).unwrap();
        assert_eq!(stats.processed, 0);
    }

    fn rel_attr(r: &StreamRepairer, name: &str) -> cfd_model::AttrId {
        r.work().schema().attr(name).unwrap()
    }
}
