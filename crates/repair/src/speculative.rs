//! Speculative parallel resolution loop for `BATCHREPAIR`.
//!
//! PR 3 parallelized the repair's *setup* (census, initial frontier); the
//! resolution loop stayed sequential because every fix mutates shared
//! state. This module parallelizes the loop itself without giving up the
//! byte-identical-at-every-thread-count contract, using optimistic
//! concurrency in the classic plan/validate/commit shape:
//!
//! 1. **Select.** Pop the top `k` *distinct dirty* entries off the
//!    `PICKNEXT` heap (and push everything back — selection is a peek).
//! 2. **Plan.** Partition the selected `(CFD, tuple)` pairs by LHS-key
//!    hash range ([`crate::shard::shard_of`]) and let `std::thread::scope`
//!    workers run `PICKNEXT` verification + `CFD-RESOLVE` + `FINDV`
//!    against the *frozen* current state. Workers share everything
//!    read-only — equivalence-class lookups are non-mutating, S-set
//!    indexes missing from the main state build into worker-private
//!    overlays — and record a **read-set** per plan: work tuples, census
//!    groups, S-set index groups, equivalence-class roots, and the
//!    base-missing `ensure`s the plan would have triggered.
//! 3. **Commit.** Replay the *exact serial pop discipline* on the heap.
//!    A popped entry whose cached plan's read-set is untouched since the
//!    snapshot commits without replanning (after replaying its `ensure`s
//!    on the main state, in merge order — S-set group order is
//!    history-dependent and FINDV truncates group walks, so build order
//!    is part of the contract). A stale plan **aborts**: it is discarded
//!    and the entry is replanned inline against current state — which is
//!    literally the sequential code path, so equivalence holds by
//!    construction. Writes during the commit phase stamp the touched
//!    cells with a monotone epoch ([`cfd_model::epoch`]); validation is
//!    "no read key stamped after the round snapshot".
//!
//! The round ends when every cached plan is consumed (committed, dropped,
//! moot, or aborted), and the next round re-selects and re-plans. Shards
//! working disjoint LHS-key ranges rarely invalidate each other — the
//! measured abort rate is the interesting number, recorded by
//! [`SpecStats`] and the kernels bench.
//!
//! **Why the output cannot depend on threads or `k`:** every fix that
//! commits was planned against exactly the state the sequential loop
//! would have planned it against — either literally (inline replan) or
//! provably (validated read-set: planning is a pure function of the state
//! it reads, and none of it changed). The commit order is the serial heap
//! order, driven by the same total `(cost, use_count, ValueId, CFD,
//! tuple)` key the frontier merge uses. Threads and `k` only move work
//! between the "cached" and "replanned" paths, never change what any path
//! computes. The differential suite (`tests/parallel_differential.rs`)
//! pins this over a (threads × k) matrix, cost bits included.
//!
//! One read is deliberately outside the validated set: the process-global
//! [`ValuePool`](cfd_model::ValuePool) `use_count` counters that break
//! exact FINDV cost ties and order the heap's `freq` component. A repair
//! never interns during resolution, so within one repair the counters are
//! constant; but another thread interning into the shared pool mid-repair
//! can flip a tie at whatever moment it lands — which perturbs *serial*
//! runs exactly the same way (the counters are time-of-read-dependent in
//! every mode, as the FINDV comment in `batch.rs` documents). Versioning
//! the pool to validate this would buy nothing the serial loop has.

use std::cmp::Reverse;
use std::collections::{HashMap, HashSet};

use cfd_cfd::CfdId;
use cfd_model::epoch::{Epoch, EpochClock, VersionMap};
use cfd_model::{AttrId, IdKey, Tuple, TupleId};

use crate::batch::{cost_key, fix_meta, BatchState, Fix, HeapKey, Planner};
use crate::distance::DistanceCache;
use crate::equivalence::Cell;
use crate::shard::{self, GroupCensus};
use crate::RepairError;

/// Counters describing the speculative schedule of one repair. These are
/// *not* part of the repair contract — abort/hit splits legitimately vary
/// with thread count and speculation depth; the repair itself never does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Plan/validate/commit rounds executed.
    pub rounds: usize,
    /// Plans produced by the parallel planning phase.
    pub planned: usize,
    /// Cached plans used at commit (committed, requeued, or clean-dropped)
    /// after validation passed.
    pub hits: usize,
    /// Fixes applied straight from a validated cached plan.
    pub commits: usize,
    /// Cached plans discarded because a read cell was written after the
    /// snapshot; the entry was replanned inline.
    pub aborts: usize,
    /// Dirty entries popped with no cached plan (beyond the speculation
    /// window, or re-dirtied mid-round); replanned inline.
    pub misses: usize,
    /// Cached plans whose entry re-queued at its true price (the serial
    /// lazy-heap discipline), to commit on a later pop.
    pub requeues: usize,
    /// Cached verifications that found the violation already gone.
    pub clean_drops: usize,
    /// Plans dropped because their pair left the dirty set before their
    /// heap entry came up.
    pub moot: usize,
    /// S-set `ensure` builds replayed onto the main state in merge order.
    pub ensures_replayed: usize,
}

impl SpecStats {
    /// Aborted fraction of all produced plans (0 when nothing was planned).
    pub fn abort_rate(&self) -> f64 {
        if self.planned == 0 {
            0.0
        } else {
            self.aborts as f64 / self.planned as f64
        }
    }
}

/// Everything one speculative plan read from mutable repair state, plus
/// the lazy index builds it would have triggered. Recorded by the
/// [`Planner`] while `reads` is armed; validated against [`SpecLog`]
/// write stamps at commit time.
#[derive(Clone, Debug, Default)]
pub(crate) struct ReadSet {
    /// Work tuples whose values were read.
    pub(crate) tuples: HashSet<TupleId>,
    /// Census groups read, keyed by (tracked shape position, group key).
    pub(crate) census: HashSet<(usize, IdKey)>,
    /// S-set index groups read, keyed by (attribute list, group key).
    pub(crate) groups: HashSet<(Vec<AttrId>, IdKey)>,
    /// Equivalence classes read, identified by their root at plan time.
    pub(crate) eq_roots: HashSet<Cell>,
    /// S-set attribute lists the plan probed that were missing from the
    /// main state (built into the worker overlay); the commit phase
    /// replays these `ensure`s in merge order, first touch order within
    /// the plan.
    pub(crate) ensured: Vec<Vec<AttrId>>,
}

/// Epoch write stamps over the mutable repair state, maintained while a
/// speculative commit phase is live (`BatchState::spec_log`). Each round
/// arms a fresh log and drops it when its plans are consumed — between
/// rounds no plan is in flight, so writes there (serial fallback steps,
/// instantiation) have nothing to invalidate and are not stamped.
pub(crate) struct SpecLog {
    clock: EpochClock,
    tuples: VersionMap<TupleId>,
    census: VersionMap<(usize, IdKey)>,
    groups: VersionMap<(Vec<AttrId>, IdKey)>,
    eq_roots: VersionMap<Cell>,
    /// S-set attribute lists any in-flight plan may have read: writes
    /// stamp group keys under every watched list containing the written
    /// attribute. Grown (never shrunk) at each round's commit start, so a
    /// write can never miss a list some pending plan reads.
    watch: Vec<Vec<AttrId>>,
}

impl SpecLog {
    pub(crate) fn new() -> Self {
        SpecLog {
            clock: EpochClock::new(),
            tuples: VersionMap::new(),
            census: VersionMap::new(),
            groups: VersionMap::new(),
            eq_roots: VersionMap::new(),
            watch: Vec::new(),
        }
    }

    /// The snapshot primitive: everything stamped after this is "written
    /// since the round began".
    pub(crate) fn snapshot(&self) -> Epoch {
        self.clock.now()
    }

    /// Add attribute lists to the write-stamp watch set.
    pub(crate) fn watch_attrs<'a>(&mut self, lists: impl IntoIterator<Item = &'a Vec<AttrId>>) {
        for l in lists {
            if !self.watch.iter().any(|w| w == l) {
                self.watch.push(l.clone());
            }
        }
    }

    /// Stamp one cell write: the tuple, every census group it enters or
    /// leaves, and every watched S-set index group whose key involves the
    /// written attribute. Called by `write_cell` *before* the downstream
    /// structures change.
    pub(crate) fn record_write(
        &mut self,
        cell: Cell,
        before: &Tuple,
        after: &Tuple,
        census: &GroupCensus,
    ) {
        let now = self.clock.tick();
        self.tuples.stamp(cell.tuple, now);
        for (si, (lhs, rhs)) in census.shape_list().enumerate() {
            let key_changed = !before.agrees_on(after, lhs);
            let val_changed = before.id(rhs) != after.id(rhs);
            if !key_changed && !val_changed {
                continue;
            }
            self.census.stamp((si, before.project_key(lhs)), now);
            if key_changed {
                self.census.stamp((si, after.project_key(lhs)), now);
            }
        }
        for i in 0..self.watch.len() {
            if !self.watch[i].contains(&cell.attr) {
                continue;
            }
            // The write changed `cell.attr`'s value and the list contains
            // it, so the before/after projections necessarily differ:
            // both the left and the joined group were touched.
            let kb = before.project_key(&self.watch[i]);
            let ka = after.project_key(&self.watch[i]);
            debug_assert_ne!(kb, ka, "projection must move with a member write");
            self.groups.stamp((self.watch[i].clone(), kb), now);
            self.groups.stamp((self.watch[i].clone(), ka), now);
        }
    }

    /// Stamp the pre-op roots of classes an `apply_fix` is about to
    /// mutate (the same identification plan read-sets use: a class read
    /// under root `r` is invalidated by any merge or target change whose
    /// pre-op root was `r`).
    pub(crate) fn record_eq(&mut self, roots: &[Cell]) {
        let now = self.clock.tick();
        for r in roots {
            self.eq_roots.stamp(*r, now);
        }
    }

    /// First read category written after `since`, or `None` when the
    /// whole read-set is still untouched (the plan is valid).
    pub(crate) fn invalidated(&self, reads: &ReadSet, since: Epoch) -> Option<&'static str> {
        if reads
            .tuples
            .iter()
            .any(|t| self.tuples.changed_since(t, since))
        {
            return Some("tuple");
        }
        if reads
            .census
            .iter()
            .any(|k| self.census.changed_since(k, since))
        {
            return Some("census");
        }
        if reads
            .groups
            .iter()
            .any(|k| self.groups.changed_since(k, since))
        {
            return Some("s-group");
        }
        if reads
            .eq_roots
            .iter()
            .any(|c| self.eq_roots.changed_since(c, since))
        {
            return Some("eq-class");
        }
        None
    }
}

/// What one planning worker concluded about one dirty `(CFD, tuple)` pair.
enum PlanOutcome {
    /// The violation is already gone: remove from the dirty set.
    Clean,
    /// Verified but unresolvable (defensive; mirrors the serial drop).
    NoPlan,
    /// A priced fix, ready to commit at `price` in the total order.
    Planned { fix: Fix, price: HeapKey, cost: f64 },
}

/// One speculative plan: the pair, the verdict, and what planning read.
struct SpecPlan {
    cfd: u32,
    tid: u32,
    outcome: PlanOutcome,
    reads: ReadSet,
}

/// Plan every pair of one shard against the frozen state. Pure reads: the
/// worker shares `state` immutably and keeps its own index overlay and
/// distance memo across pairs (both semantically transparent).
fn plan_worker(state: &BatchState<'_>, pairs: &[(u32, u32)]) -> Vec<SpecPlan> {
    let mut dcache = DistanceCache::for_pool(state.orig.pool().clone(), state.config.bitparallel());
    let mut planner = Planner::snapshot(state, &mut dcache);
    let mut out = Vec::with_capacity(pairs.len());
    for &(cfd, tid) in pairs {
        let n = state.sigma.get(CfdId(cfd)).clone();
        planner.begin_recording();
        let outcome = match planner.violates(&n, TupleId(tid)) {
            None => PlanOutcome::Clean,
            Some(v) => match planner.plan_fix(&n, TupleId(tid), &v) {
                None => PlanOutcome::NoPlan,
                Some((fix, cost)) => {
                    let (freq, value) = fix_meta(&fix, state.orig.pool());
                    PlanOutcome::Planned {
                        price: (cost_key(cost), freq, value, cfd, tid),
                        fix,
                        cost,
                    }
                }
            },
        };
        out.push(SpecPlan {
            cfd,
            tid,
            outcome,
            reads: planner.take_reads(),
        });
    }
    out
}

/// Render an attribute list for the audit trace.
fn attrs_label(attrs: &[AttrId]) -> String {
    let parts: Vec<String> = attrs.iter().map(|a| a.index().to_string()).collect();
    parts.join("+")
}

impl<'a> BatchState<'a> {
    /// Append a trace line (audit runs only); the closure never runs when
    /// tracing is off.
    fn tracef(&mut self, f: impl FnOnce() -> String) {
        if self.trace.is_some() {
            let line = f();
            if let Some(t) = self.trace.as_mut() {
                t.push(line);
            }
        }
    }

    /// Peek the next `k` distinct dirty `(CFD, tuple)` pairs in heap
    /// order. Pops are pushed back verbatim — the heap's multiset (and
    /// therefore its pop order) is unchanged.
    fn select_pairs(&mut self, k: usize) -> Vec<(u32, u32)> {
        let cap = k.saturating_mul(8).saturating_add(32);
        let mut popped: Vec<HeapKey> = Vec::new();
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut out = Vec::new();
        while out.len() < k && popped.len() < cap {
            let Some(Reverse(key)) = self.heap.pop() else {
                break;
            };
            let (_, _, _, cfd, tid) = key;
            popped.push(key);
            if self.dirty[cfd as usize].contains(&TupleId(tid)) && seen.insert((cfd, tid)) {
                out.push((cfd, tid));
            }
        }
        for key in popped {
            self.heap.push(Reverse(key));
        }
        out
    }

    /// Plan the selected pairs concurrently against the frozen state,
    /// sharded by LHS-key hash range like every other parallel phase.
    fn plan_pairs(&self, pairs: &[(u32, u32)]) -> Vec<SpecPlan> {
        let threads = self.config.parallelism.get().clamp(1, pairs.len().max(1));
        let mut shards: Vec<Vec<(u32, u32)>> = vec![Vec::new(); threads];
        for &(cfd, tid) in pairs {
            let n = self.sigma.get(CfdId(cfd));
            let key = self
                .work
                .tuple(TupleId(tid))
                .expect("dirty tuple is live")
                .project_key(n.lhs());
            shards[shard::shard_of(key.as_slice(), threads)].push((cfd, tid));
        }
        // Workers share the main state read-only; arm the index tripwire
        // so a lazy main-state `ensure` from inside the planning fan-out
        // (an out-of-merge-order build) panics instead of corrupting the
        // determinism contract.
        self.indexes.freeze();
        let plans: Vec<SpecPlan> = if threads <= 1 {
            plan_worker(self, &shards[0])
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .iter()
                    .filter(|p| !p.is_empty())
                    .map(|p| s.spawn(move || plan_worker(self, p)))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("speculative planning shard panicked"))
                    .collect()
            })
        };
        self.indexes.thaw();
        plans
    }

    /// One plan/validate/commit round over up to `speculate` entries.
    /// Returns whether any fix was applied.
    fn commit_round(
        &mut self,
        plans: Vec<SpecPlan>,
        max_steps: usize,
    ) -> Result<bool, RepairError> {
        // Arm the write log: watch every S-set list any plan read, then
        // snapshot. Planning ran strictly before this point, so "stamped
        // after the snapshot" is exactly "written after planning".
        let snapshot = {
            let log = self.spec_log.get_or_insert_with(SpecLog::new);
            for p in &plans {
                log.watch_attrs(p.reads.groups.iter().map(|(attrs, _)| attrs));
                log.watch_attrs(p.reads.ensured.iter());
            }
            log.snapshot()
        };
        let mut plan_map: HashMap<(u32, u32), SpecPlan> =
            plans.into_iter().map(|p| ((p.cfd, p.tid), p)).collect();
        let mut applied = false;
        while !plan_map.is_empty() {
            let Some(Reverse(key)) = self.heap.pop() else {
                break;
            };
            let (_, _, _, cfd_raw, tid_raw) = key;
            let id = CfdId(cfd_raw);
            let tid = TupleId(tid_raw);
            if !self.dirty[id.index()].contains(&tid) {
                // Stale entry: serial drops it on pop. If a cached plan
                // still rides on this pair, the pair was resolved through
                // another entry — the plan is moot.
                if plan_map.remove(&(cfd_raw, tid_raw)).is_some() {
                    if let Some(s) = self.spec_stats.as_mut() {
                        s.moot += 1;
                    }
                    self.tracef(|| format!("moot {cfd_raw}:{tid_raw}"));
                }
                continue;
            }
            // Validate the cached plan, if any.
            let verdict = plan_map.get(&(cfd_raw, tid_raw)).map(|plan| {
                self.spec_log
                    .as_ref()
                    .expect("log armed above")
                    .invalidated(&plan.reads, snapshot)
            });
            match verdict {
                Some(None) => {
                    // Cache hit: replay the plan's lazy index builds on
                    // the main state — this pop is exactly where the
                    // serial loop would have built them.
                    let plan = plan_map.remove(&(cfd_raw, tid_raw)).expect("present");
                    if let Some(s) = self.spec_stats.as_mut() {
                        s.hits += 1;
                    }
                    for attrs in &plan.reads.ensured {
                        self.indexes.ensure(&self.work, attrs);
                        if let Some(s) = self.spec_stats.as_mut() {
                            s.ensures_replayed += 1;
                        }
                    }
                    if self.trace.is_some() {
                        for attrs in &plan.reads.ensured {
                            let label = attrs_label(attrs);
                            self.tracef(|| format!("ensure [{label}] for {cfd_raw}:{tid_raw}"));
                        }
                    }
                    match plan.outcome {
                        PlanOutcome::Clean | PlanOutcome::NoPlan => {
                            self.dirty[id.index()].remove(&tid);
                            if let Some(s) = self.spec_stats.as_mut() {
                                s.clean_drops += 1;
                            }
                            self.tracef(|| format!("clean {cfd_raw}:{tid_raw}"));
                        }
                        PlanOutcome::Planned { fix, price, cost } => {
                            if price > key {
                                // Price rose since this entry was queued:
                                // requeue at the true price, keep the plan
                                // cached for the later pop. Its `ensure`s
                                // were just replayed — clear them so the
                                // later pop doesn't replay (and count)
                                // them twice.
                                self.heap.push(Reverse(price));
                                plan_map.insert(
                                    (cfd_raw, tid_raw),
                                    SpecPlan {
                                        cfd: cfd_raw,
                                        tid: tid_raw,
                                        outcome: PlanOutcome::Planned { fix, price, cost },
                                        reads: ReadSet {
                                            ensured: Vec::new(),
                                            ..plan.reads
                                        },
                                    },
                                );
                                if let Some(s) = self.spec_stats.as_mut() {
                                    s.requeues += 1;
                                }
                                self.tracef(|| format!("requeue {cfd_raw}:{tid_raw}"));
                                continue;
                            }
                            let desc = fix.describe(self.orig.pool());
                            self.apply_fix(fix)?;
                            self.heap.push(Reverse(price));
                            applied = true;
                            if let Some(s) = self.spec_stats.as_mut() {
                                s.commits += 1;
                            }
                            self.tracef(|| {
                                format!("commit {cfd_raw}:{tid_raw} {desc} cost={cost:.3}")
                            });
                        }
                    }
                }
                other => {
                    // Abort (stale plan) or miss (no plan): replan inline
                    // against current state — the sequential code path.
                    if let Some(Some(reason)) = other {
                        plan_map.remove(&(cfd_raw, tid_raw));
                        if let Some(s) = self.spec_stats.as_mut() {
                            s.aborts += 1;
                        }
                        self.tracef(|| format!("abort {cfd_raw}:{tid_raw} reason={reason}"));
                    } else {
                        if let Some(s) = self.spec_stats.as_mut() {
                            s.misses += 1;
                        }
                        self.tracef(|| format!("miss {cfd_raw}:{tid_raw}"));
                    }
                    let n = self.sigma.get(id).clone();
                    let violation = match self.planner().violates(&n, tid) {
                        Some(v) => v,
                        None => {
                            self.dirty[id.index()].remove(&tid);
                            self.tracef(|| format!("inline-clean {cfd_raw}:{tid_raw}"));
                            continue;
                        }
                    };
                    let (fix, cost) = match self.planner().plan_fix(&n, tid, &violation) {
                        Some(planned) => planned,
                        None => {
                            self.dirty[id.index()].remove(&tid);
                            continue;
                        }
                    };
                    let (freq, value) = fix_meta(&fix, self.orig.pool());
                    let price: HeapKey = (cost_key(cost), freq, value, cfd_raw, tid_raw);
                    if price > key {
                        self.heap.push(Reverse(price));
                        self.tracef(|| format!("inline-requeue {cfd_raw}:{tid_raw}"));
                        continue;
                    }
                    let desc = fix.describe(self.orig.pool());
                    self.apply_fix(fix)?;
                    self.heap.push(Reverse(price));
                    applied = true;
                    self.tracef(|| {
                        format!("inline-commit {cfd_raw}:{tid_raw} {desc} cost={cost:.3}")
                    });
                }
            }
            if self.stats.steps > max_steps {
                return Err(RepairError::Internal(format!(
                    "exceeded step bound {max_steps}: termination invariant broken"
                )));
            }
        }
        // Disarm the write log: no plans are in flight between rounds, so
        // stamps written outside a commit phase (the serial fallback step,
        // the instantiation phase) could never be read by any validation —
        // dropping the log saves the stamping work and its memory. The
        // next round re-arms a fresh log before taking its snapshot.
        self.spec_log = None;
        Ok(applied)
    }

    /// The speculative resolution loop: rounds of select → parallel plan
    /// → validated commit, until the heap is exhausted. Byte-identical to
    /// draining [`BatchState::step_global`] — see the module docs for the
    /// argument. Returns whether any fix was applied.
    pub(crate) fn step_speculative(&mut self, max_steps: usize) -> Result<bool, RepairError> {
        let k = self.config.speculate.clamp(1, shard::MAX_SPECULATE);
        let mut applied_any = false;
        loop {
            let pairs = self.select_pairs(k);
            if pairs.is_empty() {
                // Nothing dirty within reach: drain remaining stale
                // entries through the serial step (it returns false when
                // no violation survives anywhere).
                if self.step_global()? {
                    applied_any = true;
                    continue;
                }
                break;
            }
            let plans = self.plan_pairs(&pairs);
            if let Some(s) = self.spec_stats.as_mut() {
                s.rounds += 1;
                s.planned += plans.len();
            }
            if self.trace.is_some() {
                let mut listed: Vec<(u32, u32)> = plans.iter().map(|p| (p.cfd, p.tid)).collect();
                listed.sort_unstable();
                let parts: Vec<String> = listed.iter().map(|(c, t)| format!("{c}:{t}")).collect();
                let round = self.spec_stats.map(|s| s.rounds).unwrap_or(0);
                self.tracef(|| format!("round {round}: planned=[{}]", parts.join(",")));
            }
            if self.commit_round(plans, max_steps)? {
                applied_any = true;
            }
        }
        Ok(applied_any)
    }
}

#[cfg(test)]
mod tests {
    use cfd_cfd::pattern::{PatternRow, PatternValue};
    use cfd_cfd::{Cfd, Sigma};
    use cfd_model::{AttrId, Relation, Schema, Tuple, Value};

    use crate::batch::{batch_repair, batch_repair_traced, BatchConfig, BatchState};
    use crate::shard::Parallelism;

    /// A workload with both constant and variable violations spread over
    /// several LHS groups: enough independent work for plans to survive
    /// validation, enough group sharing for some to abort.
    fn workload() -> (Relation, Sigma) {
        let schema = Schema::new("s", &["a", "b", "c", "d"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        for i in 0..24u32 {
            // Moduli chosen coprime so every LHS group mixes RHS values
            // (variable conflicts) and the z0 pattern meets non-w0 cells
            // (constant violations).
            let mut t = Tuple::new(vec![
                Value::str(format!("k{}", i % 5)),
                Value::str(format!("v{}", i % 3)),
                Value::str(format!("w{}", i % 3)),
                Value::str(format!("z{}", i % 4)),
            ]);
            t.set_weight(AttrId(1), 0.2 + 0.1 * ((i % 5) as f64));
            rel.insert(t).unwrap();
        }
        let fd = Cfd::standard_fd("fd", vec![AttrId(0)], vec![AttrId(1)]);
        let cons = Cfd::new(
            "cons",
            vec![AttrId(3)],
            vec![AttrId(2)],
            vec![PatternRow::new(
                vec![PatternValue::constant("z0")],
                vec![PatternValue::constant("w0")],
            )],
        )
        .unwrap();
        let sigma = Sigma::normalize(schema, vec![fd, cons]).unwrap();
        (rel, sigma)
    }

    fn config(threads: usize, k: usize) -> BatchConfig {
        BatchConfig {
            parallelism: Parallelism::threads(threads),
            speculate: k,
            ..Default::default()
        }
    }

    /// Constant-rule-only workload whose violations live in pairwise
    /// disjoint groups: every plan survives validation, so the cached
    /// commit path (ensure replays included) is exercised end to end.
    fn disjoint_workload() -> (Relation, Sigma) {
        let schema = Schema::new("s", &["a", "b", "c"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        let mut rows = Vec::new();
        for i in 0..6u32 {
            rel.insert(Tuple::new(vec![
                Value::str(format!("a{i}")),
                Value::str(format!("b{i}")),
                Value::str(format!("bad{i}")),
            ]))
            .unwrap();
            rows.push(PatternRow::new(
                vec![PatternValue::constant(format!("a{i}"))],
                vec![PatternValue::constant(format!("good{i}"))],
            ));
        }
        let cons = Cfd::new("cons", vec![AttrId(0)], vec![AttrId(2)], rows).unwrap();
        let sigma = Sigma::normalize(schema, vec![cons]).unwrap();
        (rel, sigma)
    }

    /// Satellite invariant: the parallel planning phase must never drive
    /// a lazy S-set build into the main state — snapshot misses build
    /// into worker overlays, and the main set's attribute lists are
    /// untouched until the commit phase replays them in merge order.
    /// (The main indexes are also frozen during the fan-out, so a stray
    /// `ensure` would panic — see `GroupIndexes::freeze`.)
    #[test]
    fn planning_never_mutates_main_indexes() {
        let (rel, sigma) = disjoint_workload();
        let mut state = BatchState::new(&rel, &sigma, config(4, 64));
        let before = state.indexes.attr_lists();
        let pairs = state.select_pairs(64);
        assert!(!pairs.is_empty(), "workload has dirty pairs");
        let plans = state.plan_pairs(&pairs);
        assert_eq!(plans.len(), pairs.len());
        assert_eq!(
            state.indexes.attr_lists(),
            before,
            "planning phase grew the main index set out of merge order"
        );
        // Plans recorded real read-sets (FINDV S-group probes included).
        assert!(
            plans.iter().any(|p| !p.reads.groups.is_empty()),
            "constant plans must probe S-set groups"
        );
    }

    /// Disjoint plans must all commit from cache — the high-hit regime.
    #[test]
    fn disjoint_plans_commit_from_cache() {
        let (rel, sigma) = disjoint_workload();
        let serial = batch_repair(&rel, &sigma, config(1, 0)).unwrap();
        let spec = batch_repair(&rel, &sigma, config(4, 16)).unwrap();
        assert_eq!(serial.stats, spec.stats);
        let sched = spec.speculation.expect("speculative stats");
        assert!(
            sched.commits >= 4,
            "disjoint plans should commit: {sched:?}"
        );
        assert_eq!(sched.aborts, 0, "disjoint plans never conflict: {sched:?}");
    }

    /// A plan that probed an S-set list the main state lacks must have
    /// that `ensure` replayed onto the main state when it commits — at
    /// its heap position, which is merge order — never during planning.
    /// (Initial-frontier scoring replays most lists at t=0, so the
    /// mid-loop miss is staged here explicitly.)
    #[test]
    fn ensure_replay_runs_at_commit() {
        let (rel, sigma) = disjoint_workload();
        let mut state = BatchState::new(&rel, &sigma, config(1, 16));
        let pairs = state.select_pairs(4);
        assert!(!pairs.is_empty());
        let mut plans = state.plan_pairs(&pairs);
        // No CFD's S-sets mention attribute b alone: the list is absent.
        let missing = vec![AttrId(1)];
        assert!(state.indexes.get(&missing).is_none());
        plans[0].reads.ensured.push(missing.clone());
        state.commit_round(plans, 10_000).unwrap();
        assert!(
            state.indexes.get(&missing).is_some(),
            "commit phase must replay the snapshot ensure onto the main state"
        );
        assert!(
            state
                .spec_stats
                .map(|s| s.ensures_replayed >= 1)
                .unwrap_or(false),
            "replay must be counted"
        );
    }

    /// The speculative loop must actually commit from cache (otherwise
    /// every differential pass would be vacuously serial).
    #[test]
    fn speculation_commits_from_cache_and_matches_serial() {
        let (rel, sigma) = workload();
        let serial = batch_repair(&rel, &sigma, config(1, 0)).unwrap();
        for (threads, k) in [(1, 4), (4, 4), (4, 16)] {
            let spec = batch_repair(&rel, &sigma, config(threads, k)).unwrap();
            assert_eq!(serial.stats, spec.stats, "threads={threads} k={k}");
            for (id, t) in serial.repair.iter() {
                assert_eq!(
                    spec.repair.tuple(id).unwrap().to_tuple(),
                    t.to_tuple(),
                    "threads={threads} k={k}: {id}"
                );
            }
            let sched = spec.speculation.expect("speculative stats");
            assert!(sched.commits > 0, "no cache commits at k={k}: {sched:?}");
            assert!(sched.rounds > 0);
        }
    }

    /// The audit trace records commits, aborts, and ensure replays as
    /// deterministic lines, and is identical across thread counts at
    /// fixed k (the schedule is a pure function of the data and k).
    #[test]
    fn audit_trace_is_thread_count_independent() {
        let (rel, sigma) = workload();
        let (_, t1) = batch_repair_traced(&rel, &sigma, config(1, 8)).unwrap();
        let (_, t8) = batch_repair_traced(&rel, &sigma, config(8, 8)).unwrap();
        assert!(!t1.is_empty(), "speculative run produced no trace");
        assert_eq!(t1, t8, "trace diverged across thread counts");
        assert!(t1.iter().any(|l| l.starts_with("commit ")));
        assert!(t1.iter().any(|l| l.starts_with("round ")));
    }
}
