//! The CFD dependency graph behind `PICKNEXT`'s optimization (§7.2).
//!
//! The paper reports that the unoptimized `BATCHREPAIR` "runs very slow"
//! and that the authors "applied some additional optimizations based on the
//! dependency graph of the CFDs, which help PICKNEXT to select the next CFD
//! to repair". We realize that as: draw an edge `φ → ψ` whenever repairing
//! φ can re-dirty ψ (the RHS attribute of φ occurs among ψ's attributes),
//! condense strongly connected components (the experiment Σ deliberately
//! contains *cyclic* CFDs), topologically order the condensation, and have
//! the optimized picker drain violations CFD-by-CFD in that order —
//! upstream CFDs first, so downstream work is not repeatedly invalidated.

use cfd_cfd::{CfdId, Sigma};

/// Dependency-derived processing order over the normal CFDs of a Σ.
#[derive(Clone, Debug)]
pub struct DepGraph {
    order: Vec<CfdId>,
    /// Component index per CFD, in topological order of components.
    component: Vec<usize>,
}

impl DepGraph {
    /// Build the graph and its processing order for `sigma`.
    pub fn build(sigma: &Sigma) -> Self {
        let n = sigma.len();
        // adjacency: φ → ψ if RHS(φ) ∈ attrs(ψ)
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for phi in sigma.iter() {
            let out = sigma.mentioning(phi.rhs_attr());
            for psi in out {
                if psi.index() != phi.id().index() {
                    adj[phi.id().index()].push(psi.index());
                }
            }
        }
        let comp = tarjan_scc(&adj);
        // tarjan_scc returns components in *reverse* topological order
        // (a Tarjan property); component ids are renumbered so ascending id
        // = topological order.
        let n_comps = comp.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        let component: Vec<usize> = comp.iter().map(|c| n_comps - 1 - c).collect();
        let mut order: Vec<CfdId> = (0..n as u32).map(CfdId).collect();
        order.sort_by_key(|id| (component[id.index()], id.index()));
        DepGraph { order, component }
    }

    /// Normal CFD ids, upstream components first.
    pub fn order(&self) -> &[CfdId] {
        &self.order
    }

    /// Topological component index of a CFD (0 = most upstream).
    pub fn component(&self, id: CfdId) -> usize {
        self.component[id.index()]
    }
}

/// Tarjan's strongly-connected-components algorithm (iterative).
/// Returns a component id per node; ids are assigned in reverse
/// topological order.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS stack: (node, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        call.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("scc stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_cfd::Cfd;
    use cfd_model::Schema;

    fn fd(s: &Schema, name: &str, from: &str, to: &str) -> Cfd {
        Cfd::standard_fd(name, vec![s.attr(from).unwrap()], vec![s.attr(to).unwrap()])
    }

    #[test]
    fn chain_orders_upstream_first() {
        let s = Schema::new("r", &["a", "b", "c"]).unwrap();
        // a→b then b→c: repairing a→b (writes b) dirties b→c (reads b), so
        // a→b must come first.
        let sigma = Sigma::normalize(
            s.clone(),
            vec![fd(&s, "ab", "a", "b"), fd(&s, "bc", "b", "c")],
        )
        .unwrap();
        let g = DepGraph::build(&sigma);
        assert_eq!(g.order(), &[CfdId(0), CfdId(1)]);
        assert!(g.component(CfdId(0)) < g.component(CfdId(1)));
    }

    #[test]
    fn cycle_collapses_to_one_component() {
        let s = Schema::new("r", &["a", "b"]).unwrap();
        let sigma = Sigma::normalize(
            s.clone(),
            vec![fd(&s, "ab", "a", "b"), fd(&s, "ba", "b", "a")],
        )
        .unwrap();
        let g = DepGraph::build(&sigma);
        assert_eq!(g.component(CfdId(0)), g.component(CfdId(1)));
        assert_eq!(g.order().len(), 2);
    }

    #[test]
    fn independent_cfds_keep_id_order() {
        let s = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = Sigma::normalize(
            s.clone(),
            vec![fd(&s, "ab", "a", "b"), fd(&s, "cd", "c", "d")],
        )
        .unwrap();
        let g = DepGraph::build(&sigma);
        assert_eq!(g.order().len(), 2);
        // no dependency: both CFDs appear exactly once, in any order
        assert!(g.order().contains(&CfdId(0)));
        assert!(g.order().contains(&CfdId(1)));
    }

    #[test]
    fn diamond_topology() {
        let s = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = Sigma::normalize(
            s.clone(),
            vec![
                fd(&s, "ab", "a", "b"),
                fd(&s, "bc", "b", "c"),
                fd(&s, "bd", "b", "d"),
            ],
        )
        .unwrap();
        let g = DepGraph::build(&sigma);
        let pos = |i: u32| g.order().iter().position(|x| *x == CfdId(i)).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
    }

    #[test]
    fn empty_sigma() {
        let s = Schema::new("r", &["a"]).unwrap();
        let sigma = Sigma::normalize(s, vec![]).unwrap();
        let g = DepGraph::build(&sigma);
        assert!(g.order().is_empty());
    }
}
