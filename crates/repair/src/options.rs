//! One knob surface for both repair algorithms: [`RepairOptions`].
//!
//! Historically every entry point took its own config struct —
//! [`BatchConfig`](crate::BatchConfig) for `BATCHREPAIR`,
//! [`IncConfig`](crate::IncConfig) for `INCREPAIR` — and each resolved
//! the `CFD_THREADS` / `CFD_SPECULATE` environment defaults on its own.
//! Callers that expose both algorithms behind one switch (the CLI
//! `repair` command, the `cfd-server` daemon) had to duplicate the
//! mapping from user-facing flags to per-algorithm fields.
//!
//! [`RepairOptions`] is that mapping, written once: a small builder over
//! the *shared* determinism axes (algorithm, picker, `k`, threads,
//! speculation depth, distance-kernel override) that lowers to either
//! legacy config via [`RepairOptions::batch_config`] /
//! [`RepairOptions::inc_config`]. Unset axes defer to the environment,
//! and the environment is parsed **here and only here** —
//! [`Parallelism::from_env`](crate::Parallelism::from_env) and
//! [`speculation_from_env`](crate::shard::speculation_from_env) are
//! delegating shims kept for one release. (The third axis, `CFD_SIMD`,
//! is process-wide kernel selection and stays with
//! [`cfd_model::simd_enabled`]; `simd(bool)` here is the per-call
//! override threaded into the configs.)
//!
//! The old structs remain exported and functional — construct them
//! directly only when poking fields `RepairOptions` deliberately does
//! not surface (`findv_candidates`, `vio_penalty`, …).

use crate::batch::{BatchConfig, PickStrategy};
use crate::incremental::{IncConfig, Ordering};
use crate::shard::{Parallelism, MAX_SPECULATE, MAX_THREADS};

/// Resolved `CFD_THREADS`: under the `parallel` feature, the variable
/// when set (clamped to `1..=64`), else the machine's available
/// parallelism capped at 8; without the feature, 1. Parsed once per
/// process — the sole reader of the variable.
pub(crate) fn env_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        /// Threads the auto-detected default will not exceed.
        const MAX_AUTO_THREADS: usize = 8;
        static RESOLVED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *RESOLVED.get_or_init(|| {
            if let Ok(raw) = std::env::var("CFD_THREADS") {
                if let Ok(n) = raw.trim().parse::<usize>() {
                    return n.clamp(1, MAX_THREADS);
                }
            }
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, MAX_AUTO_THREADS)
        })
    }
    #[cfg(not(feature = "parallel"))]
    1
}

/// Resolved `CFD_SPECULATE`: under the `parallel` feature, the variable
/// when set (clamped to `0..=1024`), else 0. Parsed once per process —
/// the sole reader of the variable.
pub(crate) fn env_speculation() -> usize {
    #[cfg(feature = "parallel")]
    {
        static RESOLVED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *RESOLVED.get_or_init(|| {
            std::env::var("CFD_SPECULATE")
                .ok()
                .and_then(|raw| raw.trim().parse::<usize>().ok())
                .map(|n| n.min(MAX_SPECULATE))
                .unwrap_or(0)
        })
    }
    #[cfg(not(feature = "parallel"))]
    0
}

/// Which repair algorithm to run — the paper's two flavors, with the
/// incremental one carrying its §5.2 tuple-processing order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// `BATCHREPAIR` (§4): equivalence-class whole-database repair.
    Batch,
    /// `INCREPAIR` (§5) over a consistent subset
    /// ([`crate::repair_via_incremental`]), with the given ordering.
    Incremental(Ordering),
}

impl Algorithm {
    /// The CLI spelling: `batch`, `v-inc`, `w-inc`, or `l-inc`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Algorithm::Batch => "batch",
            Algorithm::Incremental(Ordering::Violations) => "v-inc",
            Algorithm::Incremental(Ordering::Weight) => "w-inc",
            Algorithm::Incremental(Ordering::Linear) => "l-inc",
        }
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "batch" => Ok(Algorithm::Batch),
            "v-inc" => Ok(Algorithm::Incremental(Ordering::Violations)),
            "w-inc" => Ok(Algorithm::Incremental(Ordering::Weight)),
            "l-inc" => Ok(Algorithm::Incremental(Ordering::Linear)),
            other => Err(format!(
                "unknown algorithm {other:?} (expected batch, v-inc, w-inc, or l-inc)"
            )),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Builder over the shared repair knobs, lowering to [`BatchConfig`] or
/// [`IncConfig`]. Unset axes resolve from the environment exactly once
/// per process; two `RepairOptions` that compare equal produce
/// byte-identical repairs on the same dataset, whatever the thread or
/// speculation settings — that is the determinism contract the
/// differential suites pin.
#[derive(Clone, Debug, PartialEq)]
pub struct RepairOptions {
    algorithm: Algorithm,
    pick: PickStrategy,
    k: usize,
    threads: Option<usize>,
    speculate: Option<usize>,
    simd: Option<bool>,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            algorithm: Algorithm::Batch,
            pick: PickStrategy::GlobalBest,
            k: 1,
            threads: None,
            speculate: None,
            simd: None,
        }
    }
}

impl RepairOptions {
    /// Batch algorithm, global-best picker, `k = 1`, everything else
    /// deferred to the environment.
    pub fn new() -> Self {
        RepairOptions::default()
    }

    /// Select the algorithm.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// `PICKNEXT` variant for the batch algorithm.
    pub fn pick(mut self, p: PickStrategy) -> Self {
        self.pick = p;
        self
    }

    /// `TUPLERESOLVE` attribute-set size for the incremental algorithm.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Explicit worker-thread count (clamped to `1..=64`), overriding
    /// `CFD_THREADS`. Repairs are byte-identical at every count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.clamp(1, MAX_THREADS));
        self
    }

    /// Explicit speculation depth (clamped to `0..=1024`), overriding
    /// `CFD_SPECULATE`. Repairs are byte-identical at every depth.
    pub fn speculate(mut self, k: usize) -> Self {
        self.speculate = Some(k.min(MAX_SPECULATE));
        self
    }

    /// Distance-kernel override: `true` forces the bit-parallel kernel,
    /// `false` the scalar reference. Unset follows the process-wide
    /// [`cfd_model::simd_enabled`] switch. Byte-identical either way.
    pub fn simd(mut self, on: bool) -> Self {
        self.simd = Some(on);
        self
    }

    /// The selected algorithm.
    pub fn algorithm_choice(&self) -> Algorithm {
        self.algorithm
    }

    /// The selected picker.
    pub fn pick_choice(&self) -> PickStrategy {
        self.pick
    }

    /// The selected `k`.
    pub fn k_choice(&self) -> usize {
        self.k
    }

    /// The explicit thread override, if any.
    pub fn threads_override(&self) -> Option<usize> {
        self.threads
    }

    /// The explicit speculation override, if any.
    pub fn speculate_override(&self) -> Option<usize> {
        self.speculate
    }

    /// The explicit kernel override, if any.
    pub fn simd_override(&self) -> Option<bool> {
        self.simd
    }

    /// The effective thread count: the override, or the environment.
    pub fn parallelism(&self) -> Parallelism {
        match self.threads {
            Some(n) => Parallelism::threads(n),
            None => Parallelism::from_env(),
        }
    }

    /// The effective speculation depth: the override, or the environment.
    pub fn speculation(&self) -> usize {
        self.speculate.unwrap_or_else(env_speculation)
    }

    /// Lower to the `BATCHREPAIR` config.
    pub fn batch_config(&self) -> BatchConfig {
        BatchConfig {
            pick: self.pick,
            parallelism: self.parallelism(),
            speculate: self.speculation(),
            simd: self.simd,
            ..BatchConfig::default()
        }
    }

    /// Lower to the `INCREPAIR` config. For [`Algorithm::Batch`] the
    /// ordering falls back to the `IncConfig` default (violations-first).
    pub fn inc_config(&self) -> IncConfig {
        let ordering = match self.algorithm {
            Algorithm::Incremental(o) => o,
            Algorithm::Batch => IncConfig::default().ordering,
        };
        IncConfig {
            k: self.k,
            ordering,
            parallelism: self.parallelism(),
            simd: self.simd,
            ..IncConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_round_trips_through_strings() {
        for name in ["batch", "v-inc", "w-inc", "l-inc"] {
            let a: Algorithm = name.parse().unwrap();
            assert_eq!(a.as_str(), name);
        }
        assert!("bogus".parse::<Algorithm>().is_err());
    }

    #[test]
    fn overrides_lower_into_both_configs() {
        let opts = RepairOptions::new()
            .algorithm(Algorithm::Incremental(Ordering::Weight))
            .k(3)
            .threads(2)
            .speculate(4)
            .simd(false);
        let b = opts.batch_config();
        assert_eq!(b.parallelism.get(), 2);
        assert_eq!(b.speculate, 4);
        assert_eq!(b.simd, Some(false));
        let i = opts.inc_config();
        assert_eq!(i.k, 3);
        assert_eq!(i.ordering, Ordering::Weight);
        assert_eq!(i.parallelism.get(), 2);
        assert_eq!(i.simd, Some(false));
    }

    #[test]
    fn unset_axes_match_the_legacy_env_defaults() {
        let opts = RepairOptions::new();
        assert_eq!(opts.parallelism(), Parallelism::from_env());
        assert_eq!(
            opts.speculation(),
            crate::shard::speculation_from_env(),
            "speculation default must match the legacy resolver"
        );
        assert_eq!(
            opts.batch_config().speculate,
            BatchConfig::default().speculate
        );
    }

    #[test]
    fn clamps_match_the_legacy_structs() {
        assert_eq!(
            RepairOptions::new().threads(10_000).parallelism(),
            Parallelism::threads(10_000)
        );
        assert_eq!(
            RepairOptions::new().speculate(1 << 20).speculation(),
            MAX_SPECULATE
        );
        assert_eq!(RepairOptions::new().k(0).k_choice(), 1);
    }
}
