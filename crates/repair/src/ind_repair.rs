//! Repairing inclusion-dependency violations (the \[5\]-style counterpart
//! the paper's future work points at).
//!
//! Dangling references are repaired by **value modification on the child
//! side**, consistent with the rest of the framework: the referencing
//! attributes are rebound to the nearest existing parent key under the
//! §3.2 cost model, or nulled (the always-legal fallback of §3.1) when no
//! parent key comes close enough to be a plausible typo fix. The parent
//! relation is never modified — inserting speculative parent rows cannot
//! be justified by the cost model and would invert the trust relation
//! between the two tables.

use cfd_cfd::ind::Ind;
use cfd_model::{Database, Value};

use crate::cost::change_cost;
use crate::RepairError;

/// Configuration for [`repair_ind`].
#[derive(Clone, Debug)]
pub struct IndRepairConfig {
    /// Rebind only when the per-tuple repair cost (weighted normalized
    /// DL distance summed over the referencing attributes) stays below
    /// this bound; otherwise the reference is nulled. With the default
    /// 0.75, a rebинding must be closer than "rewrite three quarters of a
    /// fully-trusted key".
    pub max_rebind_cost: f64,
}

impl Default for IndRepairConfig {
    fn default() -> Self {
        IndRepairConfig {
            max_rebind_cost: 0.75,
        }
    }
}

/// Statistics of one IND repair pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IndRepairStats {
    /// Dangling child tuples found.
    pub dangling: usize,
    /// Tuples rebound to an existing parent key.
    pub rebound: usize,
    /// Tuples whose referencing attributes were nulled.
    pub nulled: usize,
    /// Total repair cost under the §3.2 model.
    pub cost: f64,
}

/// Repair every violation of `ind` in `db` by modifying child tuples.
/// Returns the per-pass statistics; after it returns, `ind.check(db)` is
/// true (enforced by a debug assertion).
pub fn repair_ind(
    db: &mut Database,
    ind: &Ind,
    config: &IndRepairConfig,
) -> Result<IndRepairStats, RepairError> {
    let dangling = ind.violations(db)?;
    let mut stats = IndRepairStats {
        dangling: dangling.len(),
        ..Default::default()
    };
    if dangling.is_empty() {
        return Ok(stats);
    }
    // Candidate pool: the parent's key set (null-free), sorted for
    // deterministic tie-breaks.
    let keys: Vec<Vec<Value>> = {
        let parent = db.relation(ind.parent())?;
        let mut keys: Vec<Vec<Value>> = ind.parent_keys(parent).into_iter().collect();
        keys.sort();
        keys
    };
    let child = db.relation_mut(ind.child())?;
    for id in dangling {
        let t = child.require(id)?.to_tuple();
        let current = t.project(ind.child_attrs());
        // Cheapest parent key under the weighted normalized distance.
        let mut best: Option<(f64, &Vec<Value>)> = None;
        for key in &keys {
            let cost: f64 = ind
                .child_attrs()
                .iter()
                .zip(current.iter().zip(key.iter()))
                .map(|(a, (from, to))| change_cost(t.weight(*a), from, to))
                .sum();
            if best.map(|(c, _)| cost < c).unwrap_or(true) {
                best = Some((cost, key));
            }
        }
        match best {
            Some((cost, key)) if cost <= config.max_rebind_cost => {
                for (a, v) in ind.child_attrs().iter().zip(key.iter()) {
                    child.set_value(id, *a, v.clone())?;
                }
                stats.rebound += 1;
                stats.cost += cost;
            }
            _ => {
                let null_cost: f64 = ind
                    .child_attrs()
                    .iter()
                    .map(|a| change_cost(t.weight(*a), &t.value(*a), &Value::Null))
                    .sum();
                for a in ind.child_attrs() {
                    child.set_value(id, *a, Value::Null)?;
                }
                stats.nulled += 1;
                stats.cost += null_cost;
            }
        }
    }
    debug_assert!(ind.check(db).unwrap_or(false));
    Ok(stats)
}

/// Repair a set of INDs in sequence. INDs repair independent (child,
/// parent) pairs; chains (A ⊆ B ⊆ C) are handled by repairing parents
/// first — callers pass them in topological order, which this helper
/// verifies is sufficient by re-checking every IND at the end.
pub fn repair_inds(
    db: &mut Database,
    inds: &[Ind],
    config: &IndRepairConfig,
) -> Result<Vec<IndRepairStats>, RepairError> {
    let mut out = Vec::with_capacity(inds.len());
    for ind in inds {
        out.push(repair_ind(db, ind, config)?);
    }
    for ind in inds {
        if !ind.check(db)? {
            return Err(RepairError::Internal(format!(
                "IND {} still violated after the pass: repair order was not topological",
                ind.name()
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_model::{AttrId, Schema, Tuple};

    fn db() -> Database {
        let mut db = Database::new();
        let items = db.create(Schema::new("item", &["id", "name"]).unwrap());
        for (id, name) in [("a1001", "Book"), ("a1002", "Lamp"), ("b2001", "Desk")] {
            items.insert(Tuple::from_iter([id, name])).unwrap();
        }
        db.create(Schema::new("order", &["oid", "item_id", "qty"]).unwrap());
        db
    }

    fn fk(db: &Database) -> Ind {
        Ind::new(db, "fk_item", "order", &["item_id"], "item", &["id"]).unwrap()
    }

    #[test]
    fn typo_references_are_rebound_to_nearest_key() {
        let mut db = db();
        let id = db
            .relation_mut("order")
            .unwrap()
            .insert(Tuple::from_iter(["o1", "a10O1", "2"])) // O for 0 typo
            .unwrap();
        let ind = fk(&db);
        let stats = repair_ind(&mut db, &ind, &IndRepairConfig::default()).unwrap();
        assert_eq!(stats.dangling, 1);
        assert_eq!(stats.rebound, 1);
        assert_eq!(stats.nulled, 0);
        let fixed = db
            .relation("order")
            .unwrap()
            .require(id)
            .unwrap()
            .to_tuple();
        assert_eq!(fixed.value(AttrId(1)), Value::str("a1001"));
        assert!(ind.check(&db).unwrap());
    }

    #[test]
    fn hopeless_references_are_nulled() {
        let mut db = db();
        let id = db
            .relation_mut("order")
            .unwrap()
            .insert(Tuple::from_iter(["o1", "zzzzzzzzzz", "2"]))
            .unwrap();
        let ind = fk(&db);
        let stats = repair_ind(&mut db, &ind, &IndRepairConfig::default()).unwrap();
        assert_eq!(stats.nulled, 1);
        assert_eq!(stats.rebound, 0);
        let fixed = db
            .relation("order")
            .unwrap()
            .require(id)
            .unwrap()
            .to_tuple();
        assert!(fixed.value(AttrId(1)).is_null());
        assert!(ind.check(&db).unwrap());
    }

    #[test]
    fn clean_references_are_untouched() {
        let mut db = db();
        db.relation_mut("order")
            .unwrap()
            .insert(Tuple::from_iter(["o1", "a1001", "2"]))
            .unwrap();
        let ind = fk(&db);
        let stats = repair_ind(&mut db, &ind, &IndRepairConfig::default()).unwrap();
        assert_eq!(stats, IndRepairStats::default());
    }

    #[test]
    fn weights_gate_the_rebind_decision() {
        let mut db = db();
        // heavily trusted wrong reference: weight 1.0 and distance 2/5 →
        // cost 0.4 under the bound; with a tight bound it nulls instead
        let mut t = Tuple::from_iter(["o1", "a1999", "2"]);
        t.set_weight(AttrId(1), 1.0);
        let id = db.relation_mut("order").unwrap().insert(t).unwrap();
        let ind = fk(&db);
        let tight = IndRepairConfig {
            max_rebind_cost: 0.1,
        };
        let stats = repair_ind(&mut db, &ind, &tight).unwrap();
        assert_eq!(stats.nulled, 1);
        let fixed = db
            .relation("order")
            .unwrap()
            .require(id)
            .unwrap()
            .to_tuple();
        assert!(fixed.value(AttrId(1)).is_null());
    }

    #[test]
    fn empty_parent_forces_nulls() {
        let mut db = Database::new();
        db.create(Schema::new("item", &["id"]).unwrap());
        let orders = db.create(Schema::new("order", &["oid", "item_id"]).unwrap());
        orders.insert(Tuple::from_iter(["o1", "a1"])).unwrap();
        let ind = Ind::new(&db, "fk", "order", &["item_id"], "item", &["id"]).unwrap();
        let stats = repair_ind(&mut db, &ind, &IndRepairConfig::default()).unwrap();
        assert_eq!(stats.nulled, 1);
        assert!(ind.check(&db).unwrap());
    }

    #[test]
    fn chained_inds_repair_in_order() {
        // C ⊆ B ⊆ A: repairing B against A first keeps the end state
        // consistent for both.
        let mut db = Database::new();
        let a = db.create(Schema::new("a", &["k"]).unwrap());
        a.insert(Tuple::from_iter(["k1"])).unwrap();
        let b = db.create(Schema::new("b", &["k"]).unwrap());
        b.insert(Tuple::from_iter(["k1"])).unwrap();
        b.insert(Tuple::from_iter(["kX"])).unwrap(); // dangling vs a
        let c = db.create(Schema::new("c", &["k"]).unwrap());
        c.insert(Tuple::from_iter(["kX"])).unwrap(); // references b's dirty key
        let b_in_a = Ind::new(&db, "b_a", "b", &["k"], "a", &["k"]).unwrap();
        let c_in_b = Ind::new(&db, "c_b", "c", &["k"], "b", &["k"]).unwrap();
        let stats = repair_inds(&mut db, &[b_in_a, c_in_b], &IndRepairConfig::default()).unwrap();
        assert_eq!(stats[0].dangling, 1);
        // c's kX now chases b's repaired value (k1) — rebindable
        assert_eq!(stats[1].rebound + stats[1].nulled, 1);
    }
}
