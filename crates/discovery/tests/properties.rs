//! Randomized property tests for dependency discovery: everything mined
//! must actually hold on the input, exact FDs must be minimal, and
//! partitions must behave like partitions. Seeded trials via `cfd_prng`.

use cfd_prng::{trials, ChaCha8Rng, Rng};

use cfd_cfd::violation::check;
use cfd_cfd::Sigma;
use cfd_discovery::{discover, DiscoveryConfig, Partition, ProductScratch};
use cfd_model::{AttrId, Relation, Schema, Tuple, Value};

const ARITY: usize = 4;

fn schema() -> Schema {
    Schema::new("r", &["a", "b", "c", "d"]).unwrap()
}

fn rand_rows(rng: &mut ChaCha8Rng) -> Vec<Vec<u8>> {
    (0..rng.gen_range(1..24usize))
        .map(|_| (0..ARITY).map(|_| rng.gen_range(0..4u32) as u8).collect())
        .collect()
}

fn build(rows: &[Vec<u8>]) -> Relation {
    let mut rel = Relation::new(schema());
    for row in rows {
        rel.insert(Tuple::new(
            row.iter().map(|v| Value::str(format!("v{v}"))).collect(),
        ))
        .unwrap();
    }
    rel
}

/// Soundness: every discovered dependency — exact or conditional — holds
/// on the relation it was mined from.
#[test]
fn discoveries_hold_on_their_input() {
    trials(96, 0xD15C0, |rng| {
        let rel = build(&rand_rows(rng));
        let found = discover(
            &rel,
            &DiscoveryConfig {
                max_lhs: 2,
                min_support: 2,
                min_conditional_coverage: 0.3,
            },
        );
        let cfds: Vec<_> = found
            .iter()
            .enumerate()
            .map(|(i, d)| d.to_cfd(&format!("m{i}")))
            .collect();
        if cfds.is_empty() {
            return;
        }
        let sigma = Sigma::normalize(schema(), cfds).unwrap();
        assert!(check(&rel, &sigma), "mined rules must hold on the input");
    });
}

/// Minimality of exact FDs: no discovered `X → A` has a proper subset of
/// `X` that also determines `A` on this relation.
#[test]
fn exact_fds_are_minimal() {
    trials(96, 0x3111, |rng| {
        let rel = build(&rand_rows(rng));
        let found = discover(
            &rel,
            &DiscoveryConfig {
                max_lhs: 2,
                min_support: 2,
                min_conditional_coverage: 0.3,
            },
        );
        let holds = |lhs: &[AttrId], rhs: AttrId| -> bool {
            let mut groups: std::collections::HashMap<Vec<Value>, Value> =
                std::collections::HashMap::new();
            for (_, t) in rel.iter() {
                let key: Vec<Value> = lhs.iter().map(|a| t.value(*a)).collect();
                match groups.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != t.value(rhs) {
                            return false;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(t.value(rhs));
                    }
                }
            }
            true
        };
        for d in found.iter().filter(|d| d.is_exact()) {
            assert!(holds(&d.lhs, d.rhs), "claimed exact FD must hold");
            if d.lhs.len() > 1 {
                for drop in 0..d.lhs.len() {
                    let sub: Vec<AttrId> = d
                        .lhs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, a)| *a)
                        .collect();
                    assert!(
                        !holds(&sub, d.rhs),
                        "FD not minimal: subset also determines rhs"
                    );
                }
            }
        }
    });
}

/// Stripped partitions: group counts and error are consistent, and the
/// product refines both factors.
#[test]
fn partition_product_refines() {
    trials(96, 0x9A67, |rng| {
        let rel = build(&rand_rows(rng));
        let pa = Partition::single(&rel, AttrId(0));
        let pb = Partition::single(&rel, AttrId(1));
        let mut scratch = ProductScratch::default();
        let pab = pa.product(&pb, &mut scratch);
        // refinement: the product's error (tuples minus groups, over
        // stripped groups) never exceeds either factor's.
        assert!(pab.error() <= pa.error());
        assert!(pab.error() <= pb.error());
        // a partition with zero error means every group is a singleton —
        // then the product must also be all singletons.
        if pa.error() == 0 {
            assert_eq!(pab.error(), 0);
        }
    });
}

/// Discovery on a relation with a planted FD finds it (or a smaller LHS
/// that implies it).
#[test]
fn planted_fd_is_found() {
    trials(96, 0x9F1A47, |rng| {
        // plant: d := a (copy column), so [a] → [d] holds exactly.
        let planted: Vec<Vec<u8>> = rand_rows(rng)
            .into_iter()
            .map(|mut r| {
                r[3] = r[0];
                r
            })
            .collect();
        let rel = build(&planted);
        let found = discover(
            &rel,
            &DiscoveryConfig {
                max_lhs: 1,
                min_support: 2,
                min_conditional_coverage: 0.3,
            },
        );
        let a = AttrId(0);
        let d = AttrId(3);
        assert!(
            found
                .iter()
                .any(|f| f.is_exact() && f.rhs == d && f.lhs == vec![a]),
            "planted [a] -> [d] not discovered: {:?}",
            found
                .iter()
                .map(|f| (f.lhs.clone(), f.rhs, f.is_exact()))
                .collect::<Vec<_>>()
        );
    });
}
