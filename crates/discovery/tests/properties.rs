//! Property-based tests for dependency discovery: everything mined must
//! actually hold on the input, exact FDs must be minimal, and partitions
//! must behave like partitions.

use proptest::prelude::*;

use cfd_cfd::violation::check;
use cfd_cfd::Sigma;
use cfd_discovery::{discover, DiscoveryConfig, Partition, ProductScratch};
use cfd_model::{AttrId, Relation, Schema, Tuple, Value};

const ARITY: usize = 4;

fn schema() -> Schema {
    Schema::new("r", &["a", "b", "c", "d"]).unwrap()
}

fn relation_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0..4u8, ARITY), 1..24)
}

fn build(rows: &[Vec<u8>]) -> Relation {
    let mut rel = Relation::new(schema());
    for row in rows {
        rel.insert(Tuple::new(
            row.iter().map(|v| Value::str(format!("v{v}"))).collect(),
        ))
        .unwrap();
    }
    rel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness: every discovered dependency — exact or conditional —
    /// holds on the relation it was mined from.
    #[test]
    fn discoveries_hold_on_their_input(rows in relation_strategy()) {
        let rel = build(&rows);
        let found = discover(&rel, &DiscoveryConfig {
            max_lhs: 2,
            min_support: 2,
            min_conditional_coverage: 0.3,
        });
        let cfds: Vec<_> = found
            .iter()
            .enumerate()
            .map(|(i, d)| d.to_cfd(&format!("m{i}")))
            .collect();
        prop_assume!(!cfds.is_empty());
        let sigma = Sigma::normalize(schema(), cfds).unwrap();
        prop_assert!(check(&rel, &sigma), "mined rules must hold on the input");
    }

    /// Minimality of exact FDs: no discovered `X → A` has a proper
    /// subset of `X` that also determines `A` on this relation.
    #[test]
    fn exact_fds_are_minimal(rows in relation_strategy()) {
        let rel = build(&rows);
        let found = discover(&rel, &DiscoveryConfig {
            max_lhs: 2,
            min_support: 2,
            min_conditional_coverage: 0.3,
        });
        let holds = |lhs: &[AttrId], rhs: AttrId| -> bool {
            let mut groups: std::collections::HashMap<Vec<&Value>, &Value> =
                std::collections::HashMap::new();
            for (_, t) in rel.iter() {
                let key: Vec<&Value> = lhs.iter().map(|a| t.value(*a)).collect();
                match groups.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != t.value(rhs) {
                            return false;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(t.value(rhs));
                    }
                }
            }
            true
        };
        for d in found.iter().filter(|d| d.is_exact()) {
            prop_assert!(holds(&d.lhs, d.rhs), "claimed exact FD must hold");
            if d.lhs.len() > 1 {
                for drop in 0..d.lhs.len() {
                    let sub: Vec<AttrId> = d
                        .lhs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, a)| *a)
                        .collect();
                    prop_assert!(
                        !holds(&sub, d.rhs),
                        "FD not minimal: subset also determines rhs"
                    );
                }
            }
        }
    }

    /// Stripped partitions: group counts and error are consistent, and
    /// the product refines both factors.
    #[test]
    fn partition_product_refines(rows in relation_strategy()) {
        let rel = build(&rows);
        let pa = Partition::single(&rel, AttrId(0));
        let pb = Partition::single(&rel, AttrId(1));
        let mut scratch = ProductScratch::default();
        let pab = pa.product(&pb, &mut scratch);
        // refinement: the product never has fewer groups than either
        // factor restricted to multi-tuple groups, and its error (tuples
        // minus groups, over stripped groups) never exceeds either's.
        prop_assert!(pab.error() <= pa.error());
        prop_assert!(pab.error() <= pb.error());
        // a partition with zero error means every group is a singleton —
        // then the product must also be all singletons.
        if pa.error() == 0 {
            prop_assert_eq!(pab.error(), 0);
        }
    }

    /// Discovery on a relation with a planted FD finds it (or a smaller
    /// LHS that implies it).
    #[test]
    fn planted_fd_is_found(rows in relation_strategy()) {
        // plant: d := a (copy column), so [a] → [d] holds exactly.
        let planted: Vec<Vec<u8>> = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r[3] = r[0];
                r
            })
            .collect();
        let rel = build(&planted);
        let found = discover(&rel, &DiscoveryConfig {
            max_lhs: 1,
            min_support: 2,
            min_conditional_coverage: 0.3,
        });
        let a = AttrId(0);
        let d = AttrId(3);
        prop_assert!(
            found.iter().any(|f| f.is_exact() && f.rhs == d && f.lhs == vec![a]),
            "planted [a] -> [d] not discovered: {:?}",
            found.iter().map(|f| (f.lhs.clone(), f.rhs, f.is_exact())).collect::<Vec<_>>()
        );
    }
}
