//! Levelwise discovery of FDs and constant CFD rows.
//!
//! The VLDB 2007 paper closes with "we are studying effective methods to
//! automatically discover useful CFDs from real-life data"; this module is
//! that extension, following the two lines the literature later took:
//!
//! * **FD mining** — a bounded-LHS levelwise search (TANE-style): for each
//!   candidate `X → A` with `|X| ≤ max_lhs`, check the dependency through
//!   stripped partitions; report *minimal* FDs only (no proper subset of
//!   `X` already determines `A`).
//! * **Constant-row mining** (CFDMiner-style): for candidates `X → A` that
//!   do *not* hold globally, harvest the pattern rows that do hold
//!   conditionally — X-groups with a unique `A` value and support at least
//!   `min_support` become rows `(x̄ ‖ a)`.
//!
//! The output is a set of [`Cfd`]s in exactly the experiment Σ's shape: a
//! wildcard row when the FD is exact, constant rows where the dependency
//! is conditional — ready for [`cfd_cfd::Sigma::normalize`] and the repair
//! pipeline.

use std::collections::{HashMap, HashSet};

use cfd_cfd::pattern::{PatternRow, PatternValue};
use cfd_cfd::Cfd;
use cfd_model::{AttrId, IdKey, Relation, Value, ValueId};

use crate::partition::{fd_holds, Partition, ProductScratch};

/// Discovery parameters.
#[derive(Clone, Debug)]
pub struct DiscoveryConfig {
    /// Maximum LHS size explored (the lattice is exponential in this).
    pub max_lhs: usize,
    /// Minimum tuples an X-group needs before its constant row is
    /// trusted.
    pub min_support: usize,
    /// Emit constant rows only when at least this fraction of the
    /// relation's X-groups (with support) determine their RHS uniquely —
    /// filters attributes that are simply uncorrelated.
    pub min_conditional_coverage: f64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            max_lhs: 2,
            min_support: 3,
            min_conditional_coverage: 0.5,
        }
    }
}

/// A discovered dependency.
#[derive(Clone, Debug)]
pub struct Discovery {
    /// LHS attributes.
    pub lhs: Vec<AttrId>,
    /// RHS attribute.
    pub rhs: AttrId,
    /// `None` for an exact FD; `Some(rows)` for a conditional dependency
    /// with the mined constant rows.
    pub rows: Option<Vec<(Vec<Value>, Value)>>,
}

impl Discovery {
    /// Is this an exact (unconditional) FD?
    pub fn is_exact(&self) -> bool {
        self.rows.is_none()
    }

    /// Convert into a [`Cfd`] (wildcard row for exact FDs; mined constant
    /// rows otherwise).
    pub fn to_cfd(&self, name: &str) -> Cfd {
        let rows = match &self.rows {
            None => vec![PatternRow::all_wildcards(self.lhs.len(), 1)],
            Some(rows) => rows
                .iter()
                .map(|(key, rhs)| {
                    PatternRow::new(
                        key.iter().map(|v| PatternValue::Const(v.clone())).collect(),
                        vec![PatternValue::Const(rhs.clone())],
                    )
                })
                .collect(),
        };
        Cfd::new(name, self.lhs.clone(), vec![self.rhs], rows)
            .expect("mined rows align with attribute lists by construction")
    }
}

/// All subsets of `attrs` of size `k` (small `k`, lexicographic order).
fn subsets(attrs: &[AttrId], k: usize) -> Vec<Vec<AttrId>> {
    let mut out = Vec::new();
    let n = attrs.len();
    if k == 0 || k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|i| attrs[*i]).collect());
        let mut pos = k;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            if idx[pos] < n - (k - pos) {
                idx[pos] += 1;
                for j in pos + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Partition of an attribute set, computed as a product chain.
fn partition_of(
    attrs: &[AttrId],
    singles: &HashMap<AttrId, Partition>,
    scratch: &mut ProductScratch,
) -> Partition {
    let mut iter = attrs.iter();
    let first = iter.next().expect("non-empty attribute set");
    let mut p = singles[first].clone();
    for a in iter {
        p = p.product(&singles[a], scratch);
    }
    p
}

/// Mine FDs and conditional constant rows from `rel`.
///
/// Returns discoveries in deterministic order (LHS size, then attribute
/// ids). Exact FDs are *minimal*; conditional discoveries are reported for
/// candidates none of whose LHS subsets already determine the RHS exactly.
pub fn discover(rel: &Relation, config: &DiscoveryConfig) -> Vec<Discovery> {
    let schema = rel.schema();
    let attrs: Vec<AttrId> = schema.attr_ids().collect();
    let singles: HashMap<AttrId, Partition> = attrs
        .iter()
        .map(|a| (*a, Partition::single(rel, *a)))
        .collect();
    let mut scratch = ProductScratch::default();
    let mut out = Vec::new();
    // (lhs-set, rhs) pairs already covered by a smaller exact FD
    let mut covered: HashSet<(Vec<AttrId>, AttrId)> = HashSet::new();

    for k in 1..=config.max_lhs.min(attrs.len().saturating_sub(1)) {
        for lhs in subsets(&attrs, k) {
            let partition = partition_of(&lhs, &singles, &mut scratch);
            for &rhs in &attrs {
                if lhs.contains(&rhs) {
                    continue;
                }
                // minimality: skip if any subset of lhs already determines rhs
                let dominated = (1..k).any(|j| {
                    subsets(&lhs, j)
                        .into_iter()
                        .any(|sub| covered.contains(&(sub, rhs)))
                }) || (k > 1
                    && subsets(&lhs, k - 1)
                        .into_iter()
                        .any(|sub| covered.contains(&(sub, rhs))));
                if dominated {
                    continue;
                }
                if fd_holds(rel, &partition, rhs) {
                    covered.insert((lhs.clone(), rhs));
                    out.push(Discovery {
                        lhs: lhs.clone(),
                        rhs,
                        rows: None,
                    });
                    continue;
                }
                // conditional mining: groups (incl. singletons ≥ min_support
                // is impossible for stripped singletons, so regroup raw)
                if let Some(rows) = mine_constant_rows(rel, &lhs, rhs, config) {
                    out.push(Discovery {
                        lhs: lhs.clone(),
                        rhs,
                        rows: Some(rows),
                    });
                }
            }
        }
    }
    out
}

/// Harvest constant rows for a non-FD candidate `X → A`, reading the
/// relation's [`ValuePool`](cfd_model::ValuePool) frequency counters to
/// skip hopeless groups (see [`mine_rows`]). Falls back to the unpruned
/// walk in the rare case the counters are proven not to cover this
/// relation's occurrences.
fn mine_constant_rows(
    rel: &Relation,
    lhs: &[AttrId],
    rhs: AttrId,
    config: &DiscoveryConfig,
) -> Option<Vec<(Vec<Value>, Value)>> {
    match mine_rows(rel, lhs, rhs, config, true) {
        Mined::Rows(rows) => rows,
        Mined::PruneUnsound => match mine_rows(rel, lhs, rhs, config, false) {
            Mined::Rows(rows) => rows,
            Mined::PruneUnsound => unreachable!("unpruned walk never bails"),
        },
    }
}

/// Outcome of one support-counting walk.
enum Mined {
    /// The candidate's mined rows (`None`: no qualifying rows).
    Rows(Option<Vec<(Vec<Value>, Value)>>),
    /// The pool-frequency prune observed a key value occurring at least
    /// `min_support` times despite a below-floor pool counter — the
    /// caller must re-run without pruning.
    PruneUnsound,
}

/// One support-counting walk over the candidate `X → A`.
///
/// With `prune` set, support counting feeds on the relation's own
/// [`ValuePool`](cfd_model::ValuePool) frequency counters: a group's
/// support (its tuple count in *this* relation) can never exceed any of
/// its key values' occurrence counts in the dataset's pool
/// ([`use_count`](cfd_model::ValuePool::use_count), bumped once per
/// loaded cell), so a tuple whose key contains a value
/// counted fewer than `min_support` times is skipped — no `IdKey`
/// projection, no group-map insertion, no RHS set. The skipped tuples
/// belong exclusively to groups the support filter would discard
/// anyway, so the mined rows and the coverage denominator are
/// unchanged. Because the pool is scoped to the dataset, another
/// relation loaded in the same process can neither inflate a count
/// (masking the prune) nor train it — pruning decisions depend on this
/// relation alone.
///
/// The counters are an upper bound only for cells that entered the
/// relation through interning (CSV import, snapshot install, tuple
/// construction); raw id writes (`Relation::set_value_id`, the repair
/// hot path) bypass them. The walk therefore audits itself: it counts
/// each below-floor value's actual occurrences among the tuples it
/// skips, and the moment one reaches `min_support` — the bound lied —
/// it bails with [`Mined::PruneUnsound`] so the caller can re-run
/// unpruned. Results are thus byte-identical with and without pruning
/// on every input.
fn mine_rows(
    rel: &Relation,
    lhs: &[AttrId],
    rhs: AttrId,
    config: &DiscoveryConfig,
    prune: bool,
) -> Mined {
    let pool = rel.pool();
    let floor = config.min_support as u64;
    let mut pruned_seen: HashMap<ValueId, u64> = HashMap::new();
    let mut groups: HashMap<IdKey, (HashSet<ValueId>, usize)> = HashMap::new();
    'tuples: for (_, t) in rel.iter() {
        if lhs.iter().any(|a| t.is_null(*a)) || t.is_null(rhs) {
            continue;
        }
        if prune {
            let mut skip = false;
            for a in lhs {
                let id = t.id(*a);
                if pool.use_count(id) < floor {
                    skip = true;
                    let seen = pruned_seen.entry(id).or_insert(0);
                    *seen += 1;
                    if *seen >= floor {
                        return Mined::PruneUnsound;
                    }
                }
            }
            if skip {
                continue 'tuples;
            }
        }
        let key = t.project_key(lhs);
        let entry = groups.entry(key).or_default();
        entry.0.insert(t.id(rhs));
        entry.1 += 1;
    }
    type GroupEntry<'a> = (&'a IdKey, &'a (HashSet<ValueId>, usize));
    let supported: Vec<GroupEntry> = groups
        .iter()
        .filter(|(_, (_, count))| *count >= config.min_support)
        .collect();
    if supported.is_empty() {
        return Mined::Rows(None);
    }
    let determined: Vec<(Vec<Value>, Value)> = supported
        .iter()
        .filter(|(_, (values, _))| values.len() == 1)
        .map(|(key, (values, _))| {
            (
                key.as_slice().iter().map(|id| pool.resolve(*id)).collect(),
                pool.resolve(*values.iter().next().expect("len 1")),
            )
        })
        .collect();
    let coverage = determined.len() as f64 / supported.len() as f64;
    if coverage < config.min_conditional_coverage || determined.is_empty() {
        return Mined::Rows(None);
    }
    let mut rows = determined;
    rows.sort();
    Mined::Rows(Some(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_cfd::violation::check;
    use cfd_cfd::Sigma;
    use cfd_model::{Schema, Tuple, ValuePool};

    fn rel(rows: &[[&str; 3]]) -> Relation {
        let schema = Schema::new("r", &["a", "b", "c"]).unwrap();
        let mut r = Relation::new(schema);
        for row in rows {
            r.insert(Tuple::from_iter(row.iter().copied())).unwrap();
        }
        r
    }

    #[test]
    fn exact_fd_is_discovered_and_minimal() {
        // a → b holds; (a,c) → b must be suppressed as non-minimal.
        let r = rel(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["y", "2", "p"],
            ["y", "2", "r"],
        ]);
        let found = discover(&r, &DiscoveryConfig::default());
        let exact: Vec<_> = found.iter().filter(|d| d.is_exact()).collect();
        assert!(exact
            .iter()
            .any(|d| d.lhs == vec![AttrId(0)] && d.rhs == AttrId(1)));
        assert!(
            !exact
                .iter()
                .any(|d| d.lhs.len() == 2 && d.rhs == AttrId(1) && d.lhs.contains(&AttrId(0))),
            "supersets of a → b must be pruned"
        );
    }

    #[test]
    fn conditional_rows_are_mined_when_fd_fails() {
        // a → b fails globally (x is ambiguous) but holds for y and z with
        // support 3.
        let mut rows = vec![["x", "1", "_"], ["x", "2", "_"]];
        for _ in 0..3 {
            rows.push(["y", "7", "_"]);
            rows.push(["z", "9", "_"]);
        }
        let r = rel(&rows.iter().map(|r| [r[0], r[1], r[2]]).collect::<Vec<_>>());
        let cfg = DiscoveryConfig {
            min_support: 3,
            ..Default::default()
        };
        let found = discover(&r, &cfg);
        let cond = found
            .iter()
            .find(|d| d.lhs == vec![AttrId(0)] && d.rhs == AttrId(1) && !d.is_exact())
            .expect("conditional a → b discovered");
        let rows = cond.rows.as_ref().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&(vec![Value::str("y")], Value::str("7"))));
        assert!(rows.contains(&(vec![Value::str("z")], Value::str("9"))));
    }

    #[test]
    fn mined_cfds_hold_on_their_training_data() {
        let r = rel(&[
            ["x", "1", "p"],
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["y", "2", "q"],
            ["y", "2", "q"],
            ["y", "2", "q"],
        ]);
        let found = discover(
            &r,
            &DiscoveryConfig {
                min_support: 2,
                ..Default::default()
            },
        );
        let cfds: Vec<Cfd> = found
            .iter()
            .enumerate()
            .map(|(i, d)| d.to_cfd(&format!("mined{i}")))
            .collect();
        let sigma = Sigma::normalize(r.schema().clone(), cfds).unwrap();
        assert!(
            check(&r, &sigma),
            "every mined dependency must hold on the data"
        );
    }

    #[test]
    fn low_coverage_candidates_are_dropped() {
        // a barely determines b: only 1 of 3 supported groups is unique
        let mut rows = Vec::new();
        for v in ["1", "2", "3"] {
            rows.push(["x", v, "_"]);
        }
        for v in ["4", "5", "6"] {
            rows.push(["y", v, "_"]);
        }
        for _ in 0..3 {
            rows.push(["z", "7", "_"]);
        }
        let r = rel(&rows);
        let cfg = DiscoveryConfig {
            min_support: 3,
            min_conditional_coverage: 0.5,
            ..Default::default()
        };
        let found = discover(&r, &cfg);
        assert!(
            !found
                .iter()
                .any(|d| d.lhs == vec![AttrId(0)] && d.rhs == AttrId(1)),
            "1/3 coverage is below the 0.5 threshold"
        );
    }

    #[test]
    fn null_tuples_do_not_contribute_rows() {
        let schema = Schema::new("r", &["a", "b", "c"]).unwrap();
        let mut r = Relation::new(schema);
        for _ in 0..4 {
            r.insert(Tuple::new(vec![
                Value::Null,
                Value::str("1"),
                Value::str("_"),
            ]))
            .unwrap();
        }
        r.insert(Tuple::from_iter(["q", "2", "_"])).unwrap();
        let found = discover(
            &r,
            &DiscoveryConfig {
                min_support: 2,
                ..Default::default()
            },
        );
        for d in &found {
            if let Some(rows) = &d.rows {
                for (key, _) in rows {
                    assert!(
                        key.iter().all(|v| !v.is_null()),
                        "null keys must not be mined"
                    );
                }
            }
        }
    }

    fn rows_of(m: Mined) -> Option<Vec<(Vec<Value>, Value)>> {
        match m {
            Mined::Rows(r) => r,
            Mined::PruneUnsound => panic!("unexpected prune bail"),
        }
    }

    #[test]
    fn use_count_prefilter_never_changes_results() {
        // Normal interned data, including keys above and below the
        // support floor: the pruned and unpruned walks must agree on
        // every candidate of the lattice.
        let mut rows = vec![["x", "1", "p"], ["x", "2", "p"]];
        for _ in 0..4 {
            rows.push(["y", "7", "q"]);
            rows.push(["z", "9", "q"]);
        }
        rows.push(["w", "5", "r"]); // below floor: prunable
        let r = rel(&rows);
        let cfg = DiscoveryConfig {
            min_support: 3,
            max_lhs: 2,
            ..Default::default()
        };
        let attrs: Vec<AttrId> = (0..3u16).map(AttrId).collect();
        for k in 1..=2usize {
            for lhs in subsets(&attrs, k) {
                for &rhs in &attrs {
                    if lhs.contains(&rhs) {
                        continue;
                    }
                    let pruned = rows_of(mine_rows(&r, &lhs, rhs, &cfg, true));
                    let plain = rows_of(mine_rows(&r, &lhs, rhs, &cfg, false));
                    assert_eq!(pruned, plain, "candidate {lhs:?} -> {rhs:?}");
                }
            }
        }
    }

    #[test]
    fn prune_audits_raw_id_writes_and_falls_back() {
        // A value written through `set_value_id` occurs 4 times in the
        // relation but was interned only once, so its pool use_count
        // underestimates its support. The pruned walk must notice and
        // the public entry point must still mine the row.
        use cfd_model::TupleId;
        let schema = Schema::new("r", &["a", "b", "c"]).unwrap();
        let mut r = Relation::new(schema);
        for i in 0..4u32 {
            r.insert(Tuple::from_iter([
                format!("seed{i}"),
                "7".to_string(),
                "_".to_string(),
            ]))
            .unwrap();
        }
        // one ambiguous group so a → b is not an exact FD
        r.insert(Tuple::from_iter(["amb", "1", "_"])).unwrap();
        r.insert(Tuple::from_iter(["amb", "2", "_"])).unwrap();
        let probe = Value::str("prune-unsound-probe-miner");
        let probe_id = r.pool().intern(&probe);
        assert_eq!(r.pool().use_count(probe_id), 1);
        for i in 0..4u32 {
            r.set_value_id(TupleId(i), AttrId(0), probe_id).unwrap();
        }
        let cfg = DiscoveryConfig {
            min_support: 3,
            max_lhs: 1,
            ..Default::default()
        };
        assert!(matches!(
            mine_rows(&r, &[AttrId(0)], AttrId(1), &cfg, true),
            Mined::PruneUnsound
        ));
        let rows = mine_constant_rows(&r, &[AttrId(0)], AttrId(1), &cfg)
            .expect("fallback mines the under-counted group");
        assert!(
            rows.contains(&(vec![probe.clone()], Value::str("7"))),
            "{rows:?}"
        );
    }

    #[test]
    fn pruning_ignores_other_datasets_in_the_process() {
        // Two datasets live in one process, each on its own pool, and
        // dataset B interns the exact value dataset A's prune must see
        // as below-floor. Under the old process-global pool B's
        // occurrences would have lifted the counter past the floor,
        // masking the under-count and silently changing the pruning
        // decision; with per-dataset pools the decision depends on A
        // alone.
        use cfd_model::TupleId;
        let pool_a = ValuePool::new_handle();
        let schema = Schema::new("r", &["a", "b", "c"]).unwrap();
        let mut a = Relation::new_in(schema, pool_a.clone());
        let row = |pool: &ValuePool, cells: [&str; 3]| {
            Tuple::from_ids(cells.iter().map(|c| pool.intern(&Value::str(c))).collect())
        };
        for i in 0..4u32 {
            a.insert(row(&pool_a, [&format!("seed{i}"), "7", "_"]))
                .unwrap();
        }
        // one ambiguous group so a → b is not an exact FD
        a.insert(row(&pool_a, ["amb", "1", "_"])).unwrap();
        a.insert(row(&pool_a, ["amb", "2", "_"])).unwrap();
        let probe = Value::str("cross-dataset-probe");
        let probe_id = pool_a.intern(&probe);
        for i in 0..4u32 {
            a.set_value_id(TupleId(i), AttrId(0), probe_id).unwrap();
        }
        let cfg = DiscoveryConfig {
            min_support: 3,
            max_lhs: 1,
            ..Default::default()
        };
        let baseline = mine_constant_rows(&a, &[AttrId(0)], AttrId(1), &cfg);

        // Dataset B, on its own pool, interns the probe value well past
        // the support floor.
        let pool_b = ValuePool::new_handle();
        let mut b = Relation::new_in(Schema::new("other", &["a"]).unwrap(), pool_b.clone());
        for _ in 0..8 {
            b.insert(Tuple::from_ids(vec![pool_b.intern(&probe)]))
                .unwrap();
        }
        assert!(pool_b.use_count(pool_b.intern_uncounted(&probe)) >= cfg.min_support as u64);
        assert_eq!(
            pool_a.use_count(probe_id),
            1,
            "B must not touch A's counters"
        );

        // A's pruned walk still sees the raw-id under-count and bails,
        // exactly as it would in a process that never loaded B.
        assert!(matches!(
            mine_rows(&a, &[AttrId(0)], AttrId(1), &cfg, true),
            Mined::PruneUnsound
        ));
        let after = mine_constant_rows(&a, &[AttrId(0)], AttrId(1), &cfg);
        assert_eq!(baseline, after, "mining A is independent of B");
        assert!(after
            .expect("fallback mines the under-counted group")
            .contains(&(vec![probe], Value::str("7"))));
    }

    #[test]
    fn subsets_enumeration() {
        let attrs: Vec<AttrId> = (0..4u16).map(AttrId).collect();
        assert_eq!(subsets(&attrs, 1).len(), 4);
        assert_eq!(subsets(&attrs, 2).len(), 6);
        assert_eq!(subsets(&attrs, 3).len(), 4);
        assert!(subsets(&attrs, 5).is_empty());
    }
}
