//! Stripped partitions — the TANE representation of attribute-set
//! equivalence (Huhtala et al., *TANE: An Efficient Algorithm for
//! Discovering Functional and Approximate Dependencies*, 1999).
//!
//! The partition `Π_X` of a relation groups tuples agreeing on `X`;
//! *stripping* drops singleton groups (they can never witness an FD
//! violation). Two facts drive the miner:
//!
//! * `X → A` holds iff refining `Π_X` by `A` splits no group — checked in
//!   O(‖Π_X‖) with the error measure `e(X) = Σ (|group| − 1)`:
//!   `X → A  ⟺  e(X) = e(X ∪ {A})`;
//! * `Π_{X ∪ Y}` is the product `Π_X · Π_Y`, computable in linear time
//!   with a scratch table, so the lattice is explored level by level
//!   without re-scanning the data.

use std::collections::HashMap;

use cfd_model::{AttrId, Relation, TupleId, ValueId};

/// A stripped partition: groups of size ≥ 2, each a sorted list of tuple
/// ids.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// The groups (singletons stripped).
    pub groups: Vec<Vec<TupleId>>,
    /// Total tuples in the underlying relation (for error normalization).
    pub n_tuples: usize,
}

impl Partition {
    /// Build `Π_{{a}}` for a single attribute: a position-list index over
    /// interned ids — grouping hashes a `u32` per tuple, never a string.
    pub fn single(rel: &Relation, a: AttrId) -> Self {
        let mut by_value: HashMap<ValueId, Vec<TupleId>> = HashMap::new();
        for (id, t) in rel.iter() {
            by_value.entry(t.id(a)).or_default().push(id);
        }
        let mut groups: Vec<Vec<TupleId>> =
            by_value.into_values().filter(|g| g.len() >= 2).collect();
        groups.sort();
        Partition {
            groups,
            n_tuples: rel.len(),
        }
    }

    /// The TANE error `e(X) = Σ (|group| − 1)`: the number of tuples that
    /// would need to be removed to make `X` a key.
    pub fn error(&self) -> usize {
        self.groups.iter().map(|g| g.len() - 1).sum()
    }

    /// Number of stripped groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Product `Π_X · Π_Y` (the partition of `X ∪ Y`), in linear time via
    /// the standard scratch-table construction.
    pub fn product(&self, other: &Partition, scratch: &mut ProductScratch) -> Partition {
        scratch.ensure(self.max_tuple_id());
        let mut groups: Vec<Vec<TupleId>> = Vec::new();
        // Tag each tuple with its group index in self.
        for (gi, group) in self.groups.iter().enumerate() {
            for id in group {
                scratch.tag[id.index()] = gi as i64;
            }
        }
        // For each group of other, split by the tags.
        let mut bucket: HashMap<i64, Vec<TupleId>> = HashMap::new();
        for group in &other.groups {
            bucket.clear();
            for id in group {
                let Some(slot) = scratch.tag.get(id.index()) else {
                    continue;
                };
                if *slot >= 0 {
                    bucket.entry(*slot).or_default().push(*id);
                }
            }
            for (_, g) in bucket.drain() {
                if g.len() >= 2 {
                    groups.push(g);
                }
            }
        }
        // Reset tags.
        for group in &self.groups {
            for id in group {
                scratch.tag[id.index()] = -1;
            }
        }
        groups.sort();
        Partition {
            groups,
            n_tuples: self.n_tuples,
        }
    }

    fn max_tuple_id(&self) -> usize {
        self.groups
            .iter()
            .flat_map(|g| g.iter())
            .map(|id| id.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Reusable scratch table for [`Partition::product`].
#[derive(Default)]
pub struct ProductScratch {
    tag: Vec<i64>,
}

impl ProductScratch {
    fn ensure(&mut self, len: usize) {
        if self.tag.len() < len {
            self.tag.resize(len, -1);
        }
    }
}

/// Does `X → A` hold on `rel`, given `Π_X`? Checked against the raw data
/// (group-local value agreement), which is simpler than materializing
/// `Π_{X∪A}` and equally fast for validation purposes.
pub fn fd_holds(rel: &Relation, partition: &Partition, rhs: AttrId) -> bool {
    for group in &partition.groups {
        let mut first: Option<ValueId> = None;
        for id in group {
            let v = rel.tuple(*id).expect("live tuple").id(rhs);
            match first {
                None => first = Some(v),
                Some(f) if f == v => {}
                Some(_) => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_model::{Schema, Tuple};

    fn rel(rows: &[[&str; 3]]) -> Relation {
        let schema = Schema::new("r", &["a", "b", "c"]).unwrap();
        let mut r = Relation::new(schema);
        for row in rows {
            r.insert(Tuple::from_iter(row.iter().copied())).unwrap();
        }
        r
    }

    #[test]
    fn single_attribute_partition_strips_singletons() {
        let r = rel(&[["x", "1", "p"], ["x", "2", "q"], ["y", "3", "r"]]);
        let p = Partition::single(&r, AttrId(0));
        assert_eq!(p.group_count(), 1); // only the x-group survives
        assert_eq!(p.groups[0], vec![TupleId(0), TupleId(1)]);
        assert_eq!(p.error(), 1);
    }

    #[test]
    fn product_refines() {
        let r = rel(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["x", "2", "r"],
            ["y", "1", "s"],
        ]);
        let pa = Partition::single(&r, AttrId(0));
        let pb = Partition::single(&r, AttrId(1));
        let mut scratch = ProductScratch::default();
        let pab = pa.product(&pb, &mut scratch);
        // only (x,1) has two tuples
        assert_eq!(pab.group_count(), 1);
        assert_eq!(pab.groups[0], vec![TupleId(0), TupleId(1)]);
        // product is symmetric
        let pba = pb.product(&pa, &mut scratch);
        assert_eq!(pab, pba);
    }

    #[test]
    fn fd_check_via_partition() {
        let r = rel(&[
            ["x", "1", "p"],
            ["x", "1", "p"],
            ["y", "2", "q"],
            ["y", "2", "q"],
        ]);
        let pa = Partition::single(&r, AttrId(0));
        assert!(fd_holds(&r, &pa, AttrId(1))); // a → b
        assert!(fd_holds(&r, &pa, AttrId(2))); // a → c
        let broken = rel(&[["x", "1", "p"], ["x", "2", "p"]]);
        let pa = Partition::single(&broken, AttrId(0));
        assert!(!fd_holds(&broken, &pa, AttrId(1)));
    }

    #[test]
    fn error_measures_key_distance() {
        let r = rel(&[
            ["x", "1", "p"],
            ["x", "2", "q"],
            ["x", "3", "r"],
            ["y", "4", "s"],
        ]);
        let pa = Partition::single(&r, AttrId(0));
        assert_eq!(pa.error(), 2); // remove 2 of the 3 x-rows to make a key
        let pb = Partition::single(&r, AttrId(1));
        assert_eq!(pb.error(), 0); // b is a key
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let r = rel(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["y", "2", "r"],
            ["y", "2", "s"],
        ]);
        let pa = Partition::single(&r, AttrId(0));
        let pb = Partition::single(&r, AttrId(1));
        let mut scratch = ProductScratch::default();
        let first = pa.product(&pb, &mut scratch);
        let second = pa.product(&pb, &mut scratch);
        assert_eq!(first, second, "scratch must be reset between products");
    }
}
