//! # cfd-discovery — mining CFDs from data
//!
//! The VLDB 2007 paper's stated future work: "we are studying effective
//! methods to automatically discover useful CFDs from real-life data."
//! This crate implements the two standard ingredients the follow-up
//! literature settled on:
//!
//! * [`partition`] — stripped partitions and partition products (TANE),
//!   the representation that makes levelwise FD checking linear per
//!   candidate;
//! * [`miner`] — bounded-LHS levelwise discovery of *minimal* exact FDs
//!   plus CFDMiner-style constant pattern rows for dependencies that hold
//!   only conditionally.
//!
//! The output plugs straight into the cleaning pipeline: discoveries
//! convert to [`cfd_cfd::Cfd`]s (wildcard rows for exact FDs, mined
//! constant rows otherwise), which [`cfd_cfd::Sigma::normalize`] then
//! feeds to the repair algorithms. The `discover_rules` example mines the
//! evaluation workload and recovers the planted Σ.

pub mod miner;
pub mod partition;

pub use miner::{discover, Discovery, DiscoveryConfig};
pub use partition::{Partition, ProductScratch};
