//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. `PICKNEXT` strategy: cost-ordered global best vs dependency-ordered
//!    draining (§7.2's optimization) — time *and* accuracy.
//! 2. `TUPLERESOLVE` attribute-set size `k` ∈ {1, 2}.
//! 3. `INCREPAIR` tuple orderings (L / V / W).
//! 4. Candidate-pool width of the cost-based value index.
//! 5. Free/free merge pricing: group-majority vs the literal pairwise
//!    reading (the snowball ablation of DESIGN.md §7 item 3).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cfd_bench::workload;
use cfd_gen::{inject, NoiseConfig, RunSummary};
use cfd_repair::{
    batch_repair, repair_via_incremental, BatchConfig, IncConfig, MergePricing, Ordering,
    PickStrategy,
};

const N: usize = 1_500;

fn bench_pick_strategy(c: &mut Criterion) {
    let w = workload(N, 3);
    let noise = inject(&w.dopt, &w.world, &NoiseConfig { rate: 0.05, ..Default::default() });
    let mut g = c.benchmark_group("batch_pick_strategy");
    g.sample_size(10);
    for (label, pick) in [
        ("global_best", PickStrategy::GlobalBest),
        ("dependency_ordered", PickStrategy::DependencyOrdered),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                batch_repair(
                    black_box(&noise.dirty),
                    &w.sigma,
                    BatchConfig { pick, ..Default::default() },
                )
                .unwrap()
            })
        });
        // accuracy context printed once per strategy
        let out = batch_repair(&noise.dirty, &w.sigma, BatchConfig { pick, ..Default::default() }).unwrap();
        let q = RunSummary::evaluate(&noise.dirty, &out.repair, &w.dopt, std::time::Duration::ZERO);
        eprintln!("[{label}] precision {:.1}% recall {:.1}%", q.precision * 100.0, q.recall * 100.0);
    }
    g.finish();
}

fn bench_tupleresolve_k(c: &mut Criterion) {
    let w = workload(N, 5);
    let noise = inject(&w.dopt, &w.world, &NoiseConfig { rate: 0.05, ..Default::default() });
    let mut g = c.benchmark_group("incremental_k");
    g.sample_size(10);
    for k in [1usize, 2] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                repair_via_incremental(
                    black_box(&noise.dirty),
                    &w.sigma,
                    IncConfig { k, ..Default::default() },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_orderings(c: &mut Criterion) {
    let w = workload(N, 7);
    let noise = inject(&w.dopt, &w.world, &NoiseConfig { rate: 0.05, ..Default::default() });
    let mut g = c.benchmark_group("incremental_ordering");
    g.sample_size(10);
    for (label, ordering) in [
        ("linear", Ordering::Linear),
        ("violations", Ordering::Violations),
        ("weight", Ordering::Weight),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                repair_via_incremental(
                    black_box(&noise.dirty),
                    &w.sigma,
                    IncConfig { ordering, ..Default::default() },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_candidate_width(c: &mut Criterion) {
    let w = workload(N, 9);
    let noise = inject(&w.dopt, &w.world, &NoiseConfig { rate: 0.05, ..Default::default() });
    let mut g = c.benchmark_group("incremental_candidates_per_attr");
    g.sample_size(10);
    for width in [2usize, 6, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            b.iter(|| {
                repair_via_incremental(
                    black_box(&noise.dirty),
                    &w.sigma,
                    IncConfig { candidates_per_attr: width, ..Default::default() },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_merge_pricing(c: &mut Criterion) {
    // Seed 1 exhibits the bridge corruption that snowballs under pairwise
    // pricing (the t2258 scenario); both accuracy and time are reported.
    let w = workload(N, 1);
    let noise = inject(&w.dopt, &w.world, &NoiseConfig { rate: 0.05, seed: 1, ..Default::default() });
    let mut g = c.benchmark_group("batch_merge_pricing");
    g.sample_size(10);
    for (label, pricing) in [
        ("group_majority", MergePricing::GroupMajority),
        ("pairwise", MergePricing::Pairwise),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                batch_repair(
                    black_box(&noise.dirty),
                    &w.sigma,
                    BatchConfig { merge_pricing: pricing, ..Default::default() },
                )
                .unwrap()
            })
        });
        let out = batch_repair(
            &noise.dirty,
            &w.sigma,
            BatchConfig { merge_pricing: pricing, ..Default::default() },
        )
        .unwrap();
        let q = RunSummary::evaluate(&noise.dirty, &out.repair, &w.dopt, std::time::Duration::ZERO);
        eprintln!("[{label}] precision {:.1}% recall {:.1}%", q.precision * 100.0, q.recall * 100.0);
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pick_strategy,
    bench_tupleresolve_k,
    bench_orderings,
    bench_candidate_width,
    bench_merge_pricing
);
criterion_main!(benches);
