//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. `PICKNEXT` strategy: cost-ordered global best vs dependency-ordered
//!    draining (§7.2's optimization) — time *and* accuracy.
//! 2. `TUPLERESOLVE` attribute-set size `k` ∈ {1, 2}.
//! 3. `INCREPAIR` tuple orderings (L / V / W).
//! 4. Candidate-pool width of the cost-based value index.
//! 5. Free/free merge pricing: group-majority vs the literal pairwise
//!    reading (the snowball ablation of DESIGN.md §7 item 3).
//!
//! Run with `cargo bench --bench repair_ablations [-- json [PATH]]`.

use cfd_bench::harness::{black_box, Harness};
use cfd_bench::workload;
use cfd_gen::{inject, NoiseConfig, RunSummary};
use cfd_repair::{
    batch_repair, repair_via_incremental, BatchConfig, IncConfig, MergePricing, Ordering,
    PickStrategy,
};

const N: usize = 1_500;

fn bench_pick_strategy(h: &mut Harness) {
    let w = workload(N, 3);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    for (label, pick) in [
        ("global_best", PickStrategy::GlobalBest),
        ("dependency_ordered", PickStrategy::DependencyOrdered),
    ] {
        h.run(&format!("batch_pick_strategy/{label}"), || {
            batch_repair(
                black_box(&noise.dirty),
                &w.sigma,
                BatchConfig {
                    pick,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        // accuracy context printed once per strategy
        let out = batch_repair(
            &noise.dirty,
            &w.sigma,
            BatchConfig {
                pick,
                ..Default::default()
            },
        )
        .unwrap();
        let q = RunSummary::evaluate(
            &noise.dirty,
            &out.repair,
            &w.dopt,
            std::time::Duration::ZERO,
        );
        eprintln!(
            "[{label}] precision {:.1}% recall {:.1}%",
            q.precision * 100.0,
            q.recall * 100.0
        );
    }
}

fn bench_tupleresolve_k(h: &mut Harness) {
    let w = workload(N, 5);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    for k in [1usize, 2] {
        h.run(&format!("incremental_k/{k}"), || {
            repair_via_incremental(
                black_box(&noise.dirty),
                &w.sigma,
                IncConfig {
                    k,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    }
}

fn bench_orderings(h: &mut Harness) {
    let w = workload(N, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    for (label, ordering) in [
        ("linear", Ordering::Linear),
        ("violations", Ordering::Violations),
        ("weight", Ordering::Weight),
    ] {
        h.run(&format!("incremental_ordering/{label}"), || {
            repair_via_incremental(
                black_box(&noise.dirty),
                &w.sigma,
                IncConfig {
                    ordering,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    }
}

fn bench_candidate_width(h: &mut Harness) {
    let w = workload(N, 9);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    for width in [2usize, 6, 16] {
        h.run(&format!("incremental_candidates_per_attr/{width}"), || {
            repair_via_incremental(
                black_box(&noise.dirty),
                &w.sigma,
                IncConfig {
                    candidates_per_attr: width,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    }
}

fn bench_merge_pricing(h: &mut Harness) {
    // Seed 1 exhibits the bridge corruption that snowballs under pairwise
    // pricing; both accuracy and time are reported.
    let w = workload(N, 1);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            seed: 1,
            ..Default::default()
        },
    );
    for (label, pricing) in [
        ("group_majority", MergePricing::GroupMajority),
        ("pairwise", MergePricing::Pairwise),
    ] {
        h.run(&format!("batch_merge_pricing/{label}"), || {
            batch_repair(
                black_box(&noise.dirty),
                &w.sigma,
                BatchConfig {
                    merge_pricing: pricing,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        let out = batch_repair(
            &noise.dirty,
            &w.sigma,
            BatchConfig {
                merge_pricing: pricing,
                ..Default::default()
            },
        )
        .unwrap();
        let q = RunSummary::evaluate(
            &noise.dirty,
            &out.repair,
            &w.dopt,
            std::time::Duration::ZERO,
        );
        eprintln!(
            "[{label}] precision {:.1}% recall {:.1}%",
            q.precision * 100.0,
            q.recall * 100.0
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args.iter().position(|a| a == "json").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_repair_ablations.json".to_string())
    });

    // Whole-repair runs: coarse methodology (single-iteration batches).
    let mut h = Harness::coarse();
    bench_pick_strategy(&mut h);
    bench_tupleresolve_k(&mut h);
    bench_orderings(&mut h);
    bench_candidate_width(&mut h);
    bench_merge_pricing(&mut h);

    println!("\n{}", h.table());
    if let Some(path) = json_path {
        h.write_json(&path).expect("write bench json");
        println!("wrote {path}");
    }
}
