//! Microbenchmarks of the hot kernels underlying both repair algorithms:
//! DL distance, batched FINDV pricing (scalar per-pair OSA vs the
//! bit-parallel target-major kernel), the constant-pattern detection scan
//! (scalar columnar walk vs the 8-lane key-major sweep), index building
//! and violation detection (dictionary-encoded vs a string-keyed
//! reference), equivalence-class operations, LHS-index validation,
//! nearest-value search, cold dataset ingest (CSV re-interning vs
//! snapshot dictionary install), daemon request latency (warm resident
//! dataset vs cold one-shot open), and streaming window latency (a warm
//! `RepairSession` cycle vs the cold per-window one-shot insert).
//! `meta/*` entries record the container's CPU count and live
//! feature/kernel switches alongside the numbers.
//!
//! The headline pair is `index_build` / `detect`: the dictionary-encoded
//! value layer keys every hot map on `ValueId`/`IdKey` (u32s), while the
//! `string` variants reproduce the pre-dictionary representation —
//! `HashMap<Vec<Value>, _>` keys hashing full strings — as a faithful
//! reference kernel. `BENCH_kernels.json` records the baseline; the
//! acceptance bar for the dictionary layer is ≥ 2× on build + detection.
//!
//! Run with `cargo bench --bench kernels [-- json [PATH]]`.

use std::collections::HashMap;

use cfd_bench::harness::{black_box, Harness};
use cfd_bench::workload;
use cfd_cfd::pattern::{values_match, PatternValue};
use cfd_cfd::violation::{constant_scan_with_kernel, detect, Engine};
use cfd_cfd::Sigma;
use cfd_gen::{inject, NoiseConfig};
use cfd_model::index::HashIndex;
use cfd_model::{AttrId, Relation, StorageLayout, TupleId, Value};
use cfd_repair::cluster::ValueIndex;
use cfd_repair::distance::{dl_distance, dl_distance_bounded, dl_distance_reference};
use cfd_repair::equivalence::{Cell, EqClasses};
use cfd_repair::lhs_index::LhsIndexes;
use cfd_repair::pricing::TargetPricer;
use cfd_repair::shard::{variable_shapes, GroupCensus, Parallelism};
use cfd_repair::{batch_repair, BatchConfig, Ordering};

/// The pre-dictionary tuple representation: values stored inline, read
/// without any pool access. Reference rows are materialized once,
/// outside the timed regions — the old `Tuple` held its `Value`s
/// directly, so the string-keyed kernels must not be charged for pool
/// resolution.
type ValueRow = Vec<Value>;

fn resolve_rows(rel: &Relation) -> Vec<(TupleId, ValueRow)> {
    rel.iter().map(|(id, t)| (id, t.values())).collect()
}

/// The pre-dictionary index kernel: projections cloned from inline
/// values, keys hashing strings.
fn string_keyed_index(
    rows: &[(TupleId, ValueRow)],
    attrs: &[AttrId],
) -> HashMap<Vec<Value>, Vec<TupleId>> {
    let mut map: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
    for (id, row) in rows {
        let key: Vec<Value> = attrs.iter().map(|a| row[a.index()].clone()).collect();
        map.entry(key).or_default().push(*id);
    }
    map
}

/// A faithful pre-dictionary detector mirroring `violation::detect`'s
/// algorithm on the old representation: the same hashed constant-rule
/// grouping (keys are `Vec<Value>` instead of `IdKey`), string-keyed
/// group maps for the subsumption-minimal variable CFDs, `Value`-keyed
/// conflict histograms. Returns the total violation count.
fn string_keyed_detect(rows: &[(TupleId, ValueRow)], sigma: &Sigma) -> usize {
    let mut total = 0usize;
    // Constant rules, grouped by (lhs attrs, const-position mask) with
    // the constant projection as the hash key — the old ConstantRules.
    struct ConstGroup {
        lhs: Vec<AttrId>,
        const_attrs: Vec<AttrId>,
        map: HashMap<Vec<Value>, Vec<(AttrId, PatternValue)>>,
    }
    let mut groups: Vec<ConstGroup> = Vec::new();
    for n in sigma.iter().filter(|n| n.is_constant()) {
        let mask: Vec<bool> = n.lhs_pattern().iter().map(|p| !p.is_wildcard()).collect();
        let gi = groups
            .iter()
            .position(|g| {
                g.lhs == n.lhs() && {
                    let gmask: Vec<bool> =
                        n.lhs().iter().map(|a| g.const_attrs.contains(a)).collect();
                    gmask == mask
                }
            })
            .unwrap_or_else(|| {
                let const_attrs = n
                    .lhs()
                    .iter()
                    .zip(mask.iter())
                    .filter(|(_, m)| **m)
                    .map(|(a, _)| *a)
                    .collect();
                groups.push(ConstGroup {
                    lhs: n.lhs().to_vec(),
                    const_attrs,
                    map: HashMap::new(),
                });
                groups.len() - 1
            });
        let key: Vec<Value> = n
            .lhs_pattern()
            .iter()
            .filter_map(|p| p.as_const().cloned())
            .collect();
        groups[gi]
            .map
            .entry(key)
            .or_default()
            .push((n.rhs_attr(), n.rhs_pattern().clone()));
    }
    for (_, row) in rows {
        'group: for g in &groups {
            for a in &g.lhs {
                if row[a.index()].is_null() {
                    continue 'group;
                }
            }
            let key: Vec<Value> = g
                .const_attrs
                .iter()
                .map(|a| row[a.index()].clone())
                .collect();
            if let Some(rules) = g.map.get(&key) {
                for (rhs_attr, rhs) in rules {
                    if !rhs.satisfied_by(&row[rhs_attr.index()]) {
                        total += 1;
                    }
                }
            }
        }
    }
    // Variable CFDs (subsumption-minimal, like the engine): string-keyed
    // grouping, then per-group histograms.
    for id in cfd_cfd::violation::minimal_variable_ids(sigma) {
        let n = sigma.get(id);
        let by_key = string_keyed_index(rows, n.lhs());
        let row_of: HashMap<TupleId, &ValueRow> = rows.iter().map(|(i, r)| (*i, r)).collect();
        for (key, group) in &by_key {
            if group.len() < 2 || !values_match(key, n.lhs_pattern()) {
                continue;
            }
            let mut counts: HashMap<&Value, usize> = HashMap::new();
            let mut non_null = 0usize;
            for id in group {
                let v = &row_of[id][n.rhs_attr().index()];
                if !v.is_null() {
                    *counts.entry(v).or_insert(0) += 1;
                    non_null += 1;
                }
            }
            if counts.len() <= 1 {
                continue;
            }
            for id in group {
                let v = &row_of[id][n.rhs_attr().index()];
                if !v.is_null() {
                    total += non_null - counts[v];
                }
            }
        }
    }
    total
}

/// The row-vs-column headline: the *same* engine code on the two storage
/// layouts of the same relation. Columnar detection walks rule-group and
/// census column slices (contiguous u32 runs); row-major chases one heap
/// row object per tuple. Returns (index-build speedup, detect speedup),
/// both as row-major / columnar medians.
fn bench_row_vs_column(h: &mut Harness) -> (f64, f64) {
    let w = workload(2_000, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let columnar = noise.dirty.to_layout(StorageLayout::Columnar);
    let rowmajor = noise.dirty.to_layout(StorageLayout::RowMajor);
    let lhs = w
        .sigma
        .iter()
        .next()
        .expect("non-empty sigma")
        .lhs()
        .to_vec();

    // Sanity: the layouts must agree before their timings mean anything.
    assert_eq!(
        detect(&columnar, &w.sigma).total,
        detect(&rowmajor, &w.sigma).total,
        "row and columnar detection disagree"
    );

    let build_col = h.run("index_build/columnar_2k", || {
        HashIndex::build(black_box(&columnar), black_box(&lhs)).group_count()
    });
    let build_row = h.run("index_build/rowmajor_2k", || {
        HashIndex::build(black_box(&rowmajor), black_box(&lhs)).group_count()
    });
    let detect_col = h.run("detect/columnar_2k_5pct", || {
        detect(black_box(&columnar), black_box(&w.sigma)).total
    });
    let detect_row = h.run("detect/rowmajor_2k_5pct", || {
        detect(black_box(&rowmajor), black_box(&w.sigma)).total
    });

    let build_speedup = build_row.median_ns / build_col.median_ns;
    let detect_speedup = detect_row.median_ns / detect_col.median_ns;
    eprintln!("index build speedup (row/columnar): {build_speedup:.2}x");
    eprintln!("detection speedup  (row/columnar): {detect_speedup:.2}x");
    (build_speedup, detect_speedup)
}

/// Where `BENCH_kernels.json` lives by default: the workspace root,
/// regardless of the working directory `cargo bench` hands the binary
/// (package dir), so local runs refresh the committed baseline and CI
/// uploads find the file.
fn default_json_path() -> String {
    format!("{}/../../BENCH_kernels.json", env!("CARGO_MANIFEST_DIR"))
}

/// The sharded-repair headline: `GroupCensus` construction — the setup
/// phase `BATCHREPAIR` fans out by LHS-key hash range — serial vs four
/// worker threads on the same 20k-tuple workload. The checksum assertion
/// pins bit-identical contents before any timing means anything. Returns
/// the serial/sharded median ratio (> 1 means sharding wins).
fn bench_census(h: &mut Harness) -> f64 {
    let w = workload(20_000, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let shapes = variable_shapes(&w.sigma);
    assert!(!shapes.is_empty(), "workload Σ has variable CFDs");
    let serial = Parallelism::serial();
    let four = Parallelism::threads(4);
    // Sanity: sharded construction must be bit-identical to serial.
    assert_eq!(
        GroupCensus::build(&noise.dirty, &shapes, &serial).checksum(),
        GroupCensus::build(&noise.dirty, &shapes, &four).checksum(),
        "sharded census diverged from serial"
    );
    let ser = h.run("repair_census/serial_20k", || {
        GroupCensus::build(black_box(&noise.dirty), black_box(&shapes), &serial).carriers()
    });
    let par = h.run("repair_census/sharded4_20k", || {
        GroupCensus::build(black_box(&noise.dirty), black_box(&shapes), &four).carriers()
    });
    let speedup = ser.median_ns / par.median_ns;
    eprintln!("census build speedup (serial/sharded4): {speedup:.2}x");
    speedup
}

/// CI smoke gates: quick row-vs-column comparison plus the sharded-census
/// comparison; exits nonzero when the columnar detection kernel regresses
/// below the row-major baseline or the 4-thread census build falls below
/// the serial one. Two defenses against shared-runner scheduling noise —
/// a small jitter margin (detection) and best-of-three attempts — so only
/// a reproducible regression trips the gates. Also writes
/// `BENCH_kernels.json` so the workflow can upload the numbers as an
/// artifact.
const SMOKE_MIN_DETECT_SPEEDUP: f64 = 0.95;
const SMOKE_MIN_CENSUS_SPEEDUP: f64 = 1.0;
const SMOKE_MIN_LOAD_SPEEDUP: f64 = 1.0;
const SMOKE_MIN_MMAP_LOAD_SPEEDUP: f64 = 1.0;
const SMOKE_MIN_PRICING_SPEEDUP: f64 = 1.0;
const SMOKE_MIN_CONST_SCAN_SPEEDUP: f64 = 1.0;
const SMOKE_MIN_SERVER_SPEEDUP: f64 = 1.0;
const SMOKE_MIN_STREAM_SPEEDUP: f64 = 1.0;
const SMOKE_ATTEMPTS: usize = 3;

fn smoke() -> ! {
    // The census gate compares wall time, so it only means something where
    // threads can actually run in parallel; a single-CPU runner still
    // records the numbers (and the bit-identical checksum still asserts)
    // but cannot be asked to beat serial.
    let multicore = std::thread::available_parallelism()
        .map(|n| n.get() >= 2)
        .unwrap_or(false);
    let mut detect_ok = false;
    let mut census_ok = !multicore;
    let mut load_ok = false;
    let mut mmap_ok = false;
    let mut pricing_ok = false;
    let mut scan_ok = false;
    let mut server_ok = false;
    let mut stream_ok = false;
    for attempt in 1..=SMOKE_ATTEMPTS {
        let mut h = Harness::new();
        h.batches = 7;
        h.target_batch_ns = 2_000_000;
        record_metadata(&mut h);
        let (build_speedup, detect_speedup) = bench_row_vs_column(&mut h);
        let census_speedup = bench_census(&mut h);
        // Recorded, not gated: the speculative resolution loop's timing
        // and abort rate land in BENCH_kernels.json so the numbers are
        // tracked per run; a wall-time gate waits until the win is
        // established on multi-core runners.
        let resolution_speedup = bench_resolution(&mut h);
        let (load_speedup, mmap_speedup) = bench_load(&mut h);
        // Single-core compute kernels: gated even on a 1-CPU runner.
        let pricing_speedup = bench_pricing(&mut h);
        let scan_speedup = bench_constant_scan(&mut h);
        // The daemon's warm-vs-cold request latency: loopback RTT against
        // a resident dataset must beat re-parsing + re-indexing per call.
        let server_speedup = bench_server_latency(&mut h);
        // Streaming window latency: a warm RepairSession cycle must beat
        // the cold per-window one-shot (open + insert) path.
        let stream_speedup = bench_stream(&mut h);
        record_pool_bytes(&mut h);
        record_peak_rss(&mut h);
        println!("{}", h.table());
        println!("index build speedup (row/columnar): {build_speedup:.2}x");
        println!("detection speedup  (row/columnar): {detect_speedup:.2}x");
        println!("census build speedup (serial/sharded4): {census_speedup:.2}x");
        println!(
            "resolution speedup (serial/spec4x16): {resolution_speedup:.2}x (recorded, not gated)"
        );
        println!("load speedup (csv/snapshot): {load_speedup:.2}x");
        println!("snapshot open speedup (eager/mmap): {mmap_speedup:.2}x");
        println!("pricing speedup (scalar/bit-parallel): {pricing_speedup:.2}x");
        println!("constant scan speedup (scalar/simd): {scan_speedup:.2}x");
        println!("request latency (cold one-shot / warm daemon): {server_speedup:.2}x");
        println!("window latency (cold one-shot / warm stream): {stream_speedup:.2}x");
        if !multicore {
            println!("single-CPU runner: census wall-time gate not applicable");
        }
        h.write_json(&default_json_path())
            .expect("write bench json");
        detect_ok |= detect_speedup >= SMOKE_MIN_DETECT_SPEEDUP;
        census_ok |= census_speedup >= SMOKE_MIN_CENSUS_SPEEDUP;
        load_ok |= load_speedup >= SMOKE_MIN_LOAD_SPEEDUP;
        mmap_ok |= mmap_speedup >= SMOKE_MIN_MMAP_LOAD_SPEEDUP;
        pricing_ok |= pricing_speedup >= SMOKE_MIN_PRICING_SPEEDUP;
        scan_ok |= scan_speedup >= SMOKE_MIN_CONST_SCAN_SPEEDUP;
        server_ok |= server_speedup >= SMOKE_MIN_SERVER_SPEEDUP;
        stream_ok |= stream_speedup >= SMOKE_MIN_STREAM_SPEEDUP;
        if detect_ok
            && census_ok
            && load_ok
            && mmap_ok
            && pricing_ok
            && scan_ok
            && server_ok
            && stream_ok
        {
            println!(
                "smoke ok: columnar detection ≥ row-major, sharded census ≥ serial, \
                 snapshot load ≥ csv re-intern load, mmap snapshot open ≥ eager, \
                 bit-parallel pricing ≥ scalar, \
                 simd constant scan ≥ scalar, warm daemon detect ≥ cold one-shot, \
                 warm stream window ≥ cold one-shot insert"
            );
            std::process::exit(0);
        }
        eprintln!(
            "smoke attempt {attempt}/{SMOKE_ATTEMPTS}: detection \
             {detect_speedup:.2}x (gate {SMOKE_MIN_DETECT_SPEEDUP}x), census \
             {census_speedup:.2}x (gate {SMOKE_MIN_CENSUS_SPEEDUP}x), load \
             {load_speedup:.2}x (gate {SMOKE_MIN_LOAD_SPEEDUP}x), mmap open \
             {mmap_speedup:.2}x (gate {SMOKE_MIN_MMAP_LOAD_SPEEDUP}x), pricing \
             {pricing_speedup:.2}x (gate {SMOKE_MIN_PRICING_SPEEDUP}x), \
             constant scan {scan_speedup:.2}x (gate \
             {SMOKE_MIN_CONST_SCAN_SPEEDUP}x), server \
             {server_speedup:.2}x (gate {SMOKE_MIN_SERVER_SPEEDUP}x), stream \
             {stream_speedup:.2}x (gate {SMOKE_MIN_STREAM_SPEEDUP}x)"
        );
    }
    if !detect_ok {
        eprintln!(
            "SMOKE FAIL: columnar detection regressed below the row-major \
             baseline in {SMOKE_ATTEMPTS}/{SMOKE_ATTEMPTS} attempts"
        );
    }
    if !census_ok {
        eprintln!(
            "SMOKE FAIL: 4-thread census construction regressed below the \
             serial baseline in {SMOKE_ATTEMPTS}/{SMOKE_ATTEMPTS} attempts"
        );
    }
    if !load_ok {
        eprintln!(
            "SMOKE FAIL: snapshot load regressed below the CSV re-intern \
             load in {SMOKE_ATTEMPTS}/{SMOKE_ATTEMPTS} attempts"
        );
    }
    if !mmap_ok {
        eprintln!(
            "SMOKE FAIL: the mapped snapshot open regressed below the eager \
             reader in {SMOKE_ATTEMPTS}/{SMOKE_ATTEMPTS} attempts"
        );
    }
    if !pricing_ok {
        eprintln!(
            "SMOKE FAIL: bit-parallel batched pricing regressed below the \
             scalar per-pair kernel in {SMOKE_ATTEMPTS}/{SMOKE_ATTEMPTS} attempts"
        );
    }
    if !scan_ok {
        eprintln!(
            "SMOKE FAIL: vectorized constant scan regressed below the scalar \
             columnar walk in {SMOKE_ATTEMPTS}/{SMOKE_ATTEMPTS} attempts"
        );
    }
    if !server_ok {
        eprintln!(
            "SMOKE FAIL: warm daemon detect regressed below the cold one-shot \
             path in {SMOKE_ATTEMPTS}/{SMOKE_ATTEMPTS} attempts"
        );
    }
    if !stream_ok {
        eprintln!(
            "SMOKE FAIL: the warm streaming window cycle regressed below the \
             cold one-shot insert path in {SMOKE_ATTEMPTS}/{SMOKE_ATTEMPTS} attempts"
        );
    }
    std::process::exit(1);
}

/// The persistence headline: cold ingest of the same 20k-tuple dirty
/// workload through three paths — CSV (parse text, intern every cell),
/// eager snapshot (verify checksums, bulk-install the dictionary, copy
/// columns), and mapped snapshot (map the file, verify checksums in
/// place, borrow the id columns zero-copy). The equality assertions pin
/// that all paths produce the same relation before the timings mean
/// anything. Returns `(csv/snapshot, snapshot/mmap)` median ratios
/// (> 1 means the later path wins), and records the mapped reader's
/// borrowed-vs-owned byte split plus a two-open kernel where both opens
/// share one cached mapping.
fn bench_load(h: &mut Harness) -> (f64, f64) {
    use cfd_model::csv::{read_relation, write_relation};
    use cfd_model::snapshot::{read_snapshot, read_snapshot_mapped, snapshot_to_vec};
    use cfd_model::MappingCache;

    let w = workload(20_000, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let mut csv = Vec::new();
    write_relation(&noise.dirty, &mut csv).expect("render csv");
    let snap = snapshot_to_vec(&noise.dirty, None);

    // Sanity: the two ingest paths must agree cell for cell. Each load
    // interns into a pool of its own, so compare resolved values — raw
    // ids are pool-local.
    let via_csv = read_relation("dirty", &mut csv.as_slice()).expect("csv parses");
    let via_snap = read_snapshot(&snap).expect("snapshot loads").relation;
    assert_eq!(via_csv.len(), via_snap.len(), "ingest paths disagree");
    for a in via_csv.schema().attr_ids() {
        let cc = via_csv.column(a).expect("csv column");
        let cs = via_snap.column(a).expect("snapshot column");
        assert_eq!(cc.len(), cs.len(), "ingest paths disagree on column {a}");
        for (i, (x, y)) in cc.iter().zip(cs).enumerate() {
            assert_eq!(
                via_csv.pool().resolve(*x),
                via_snap.pool().resolve(*y),
                "ingest paths disagree at column {a} row {i}"
            );
        }
    }

    // The mapped path opens a real file per iteration (mmap + in-place
    // checksum walk + zero-copy borrow), so the kernel measures the
    // whole open, not just the decode.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("cfd-bench-snap-{}.cfds", std::process::id()));
    std::fs::write(&path, &snap).expect("write snapshot file");

    // Sanity: the mapped reader agrees with the eager one cell for cell,
    // and actually borrows the id columns from the mapping.
    let map = cfd_model::Mapping::open(&path).expect("map snapshot");
    let via_map = read_snapshot_mapped(&map)
        .expect("mapped snapshot loads")
        .relation;
    assert_eq!(via_snap.len(), via_map.len(), "mapped reader disagrees");
    for a in via_snap.schema().attr_ids() {
        let ce = via_snap.column(a).expect("eager column");
        let cm = via_map.column(a).expect("mapped column");
        for (i, (x, y)) in ce.iter().zip(cm).enumerate() {
            assert_eq!(
                via_snap.pool().resolve(*x),
                via_map.pool().resolve(*y),
                "mapped reader disagrees at column {a} row {i}"
            );
        }
    }
    h.record("meta/snapshot_mapped_bytes", via_map.mapped_bytes() as f64);
    h.record("meta/snapshot_owned_bytes", via_map.owned_bytes() as f64);
    drop(via_map);
    drop(map);

    let t_csv = h.run("load/csv_reintern_20k", || {
        read_relation("dirty", &mut black_box(csv.as_slice()))
            .expect("csv parses")
            .len()
    });
    let t_snap = h.run("load/snapshot_20k", || {
        read_snapshot(black_box(&snap))
            .expect("snapshot loads")
            .relation
            .len()
    });
    let t_mmap = h.run("load/snapshot_mmap_20k", || {
        let map = cfd_model::Mapping::open(black_box(&path)).expect("map snapshot");
        read_snapshot_mapped(&map)
            .expect("mapped snapshot loads")
            .relation
            .len()
    });
    // Two datasets opened from the same snapshot file through the cache
    // share one mapping — the resident-service open path.
    h.run("load/snapshot_mmap_shared_2x_20k", || {
        let cache = MappingCache::new();
        let m1 = cache.get_or_open(black_box(&path)).expect("map snapshot");
        let m2 = cache.get_or_open(black_box(&path)).expect("map snapshot");
        assert!(
            std::sync::Arc::ptr_eq(&m1, &m2),
            "cache must share the mapping"
        );
        let a = read_snapshot_mapped(&m1)
            .expect("mapped snapshot loads")
            .relation;
        let b = read_snapshot_mapped(&m2)
            .expect("mapped snapshot loads")
            .relation;
        a.len() + b.len()
    });
    let _ = std::fs::remove_file(&path);
    let speedup = t_csv.median_ns / t_snap.median_ns;
    let mmap_speedup = t_snap.median_ns / t_mmap.median_ns;
    eprintln!("load speedup (csv/snapshot): {speedup:.2}x");
    eprintln!("snapshot open speedup (eager/mmap): {mmap_speedup:.2}x");
    (speedup, mmap_speedup)
}

/// Peak resident set size of this bench process, from
/// `/proc/self/status` `VmHWM` (kB). Recorded so the mapped reader's
/// memory claim is visible next to its timings; 0 where the proc
/// interface is unavailable.
fn record_peak_rss(h: &mut Harness) {
    let kb = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<f64>().ok())
            })
        })
        .unwrap_or(0.0);
    h.record("meta/peak_rss_kb", kb);
}

fn bench_distance(h: &mut Harness) {
    for (a, b) in [
        ("19014", "10012"),
        ("Springfield", "Sprignfeild"),
        ("Walnut St", "Wall St"),
    ] {
        h.run(&format!("dl_distance/exact/{a}-{b}"), || {
            dl_distance(black_box(a), black_box(b))
        });
        h.run(&format!("dl_distance/bounded2/{a}-{b}"), || {
            dl_distance_bounded(black_box(a), black_box(b), 2)
        });
    }
}

/// The batched-pricing headline: `FINDV` prices one conflicting value
/// against a whole candidate set, so the unit of work is target ×
/// candidates, not one pair. `scalar_batch` is the pre-batch kernel —
/// every pair collects both strings into `Vec<char>` and fills the full
/// OSA table. `bitparallel_batch` builds the target's pattern bitmasks
/// once per target ([`TargetPricer`]) and streams every candidate
/// through the u64-word DP. The equality assertion pins the two kernels
/// to the same integers before the timings mean anything. Returns the
/// scalar/bit-parallel median ratio (> 1 means the batched kernel wins;
/// the bar recorded in `BENCH_kernels.json` is ≥ 1.5×, gated at ≥ 1× in
/// smoke). Pure compute on one core — the number is meaningful on a
/// single-CPU runner, unlike the thread-scaling entries.
fn bench_pricing(h: &mut Harness) -> f64 {
    let w = workload(2_000, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    // Candidate pool: the distinct constants of the dirty relation across
    // every attribute (typo noise inflates the per-attribute domains),
    // deduplicated and sorted for a deterministic workload.
    let adom = cfd_model::ActiveDomain::of_relation(&noise.dirty);
    let mut candidates: Vec<String> = noise
        .dirty
        .schema()
        .attr_ids()
        .flat_map(|a| adom.sorted_values(a))
        .map(|v| v.render().into_owned())
        .collect();
    candidates.sort();
    candidates.dedup();
    assert!(
        candidates.len() >= 64,
        "active domain too small to batch ({})",
        candidates.len()
    );
    // Keep the timed region in the low milliseconds: thin the pool to at
    // most ~512 candidates, spread evenly across the sorted order.
    let step = candidates.len().div_ceil(512);
    let candidates: Vec<String> = candidates.into_iter().step_by(step).collect();
    // Every 21st constant as a pricing target: FINDV's shape is a handful
    // of conflicting values each priced against the whole candidate pool.
    let targets: Vec<String> = candidates.iter().step_by(21).cloned().collect();

    // Sanity: the kernels must agree pair for pair.
    for t in &targets {
        let pricer = TargetPricer::with_kernel(t, true);
        for c in &candidates {
            assert_eq!(
                pricer.distance(c),
                dl_distance_reference(t, c),
                "kernels disagree on {t:?} vs {c:?}"
            );
        }
    }

    let scalar = h.run("pricing/scalar_batch", || {
        let mut sum = 0usize;
        for t in &targets {
            for c in &candidates {
                sum += dl_distance_reference(black_box(t), black_box(c));
            }
        }
        sum
    });
    let bitparallel = h.run("pricing/bitparallel_batch", || {
        let mut sum = 0usize;
        for t in &targets {
            let pricer = TargetPricer::with_kernel(black_box(t), true);
            for c in &candidates {
                sum += pricer.distance(black_box(c));
            }
        }
        sum
    });
    let speedup = scalar.median_ns / bitparallel.median_ns;
    eprintln!("pricing speedup (scalar/bit-parallel): {speedup:.2}x");
    speedup
}

/// The vectorized-detection headline: the constant-pattern scan over the
/// same engine and columnar relation, scalar columnar walk vs the 8-lane
/// key-major sweep. The equality assertion pins the two reports before
/// the timings mean anything. Returns the scalar/simd median ratio
/// (> 1 means the vectorized scan wins). Single-threaded either way, so
/// the comparison holds on a single-CPU runner.
///
/// The world is deliberately compact (8 cities × 4 zips): tableau rows
/// scale with zips/area codes, and the key-major sweep only engages when
/// every group stays within its 64-key gate — the default §7.1 world's
/// 320-row tableaus fall back to the tuple-major scalar probe by design.
/// The assertion on `key_counts` keeps this bench honest: if the
/// generator changes shape, it fails loudly rather than silently timing
/// scalar against scalar.
fn bench_constant_scan(h: &mut Harness) -> f64 {
    let w = cfd_gen::generate(&cfd_gen::GenConfig {
        n_tuples: 6_000,
        seed: 7,
        world: cfd_gen::WorldConfig {
            n_cities: 8,
            zips_per_city: 4,
            streets_per_city: 6,
            n_customers: 2_000,
            n_items: 1_000,
            ..Default::default()
        },
    });
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let rel = noise.dirty.to_layout(StorageLayout::Columnar);
    let engine = Engine::build(&rel, &w.sigma);
    assert!(
        engine.rules.key_counts().iter().all(|&k| k <= 64),
        "constant tableaus exceed the key-major gate — simd path disabled \
         ({:?})",
        engine.rules.key_counts()
    );

    let scalar_report = constant_scan_with_kernel(&rel, &w.sigma, &engine, false);
    let simd_report = constant_scan_with_kernel(&rel, &w.sigma, &engine, true);
    assert_eq!(simd_report, scalar_report, "simd constant scan diverged");
    assert!(
        scalar_report.total > 0,
        "noisy workload has constant-CFD violations"
    );

    let scalar = h.run("detect/constant_scan_scalar", || {
        constant_scan_with_kernel(
            black_box(&rel),
            black_box(&w.sigma),
            black_box(&engine),
            false,
        )
        .total
    });
    let simd = h.run("detect/constant_scan_simd", || {
        constant_scan_with_kernel(
            black_box(&rel),
            black_box(&w.sigma),
            black_box(&engine),
            true,
        )
        .total
    });
    let speedup = scalar.median_ns / simd.median_ns;
    eprintln!("constant scan speedup (scalar/simd): {speedup:.2}x");
    speedup
}

/// The residency headline: request latency against a warm `cfd-server`
/// daemon over loopback TCP vs the cold one-shot path that re-parses,
/// re-interns, and rebuilds the detection index on every invocation
/// (what a fresh CLI process pays). The equality assertion pins that the
/// daemon's answer is byte-identical to the one-shot facade before the
/// timings mean anything. Also records the raw ping round trip (the
/// framing + socket floor) and a warm whole-repair round trip. Returns
/// the cold/warm detect median ratio (> 1 means residency wins).
fn bench_server_latency(h: &mut Harness) -> f64 {
    use cfd_server::{Client, RepairSpec, Request, Response, Server, ServerConfig};

    let w = workload(2_000, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let mut csv_bytes = Vec::new();
    cfd_model::csv::write_relation(&noise.dirty, &mut csv_bytes).expect("render csv");
    let rules_text: String = w
        .sigma
        .sources()
        .iter()
        .map(|c| cfd_cfd::parser::render_cfd(w.dopt.schema(), c) + "\n")
        .collect();

    // The cold kernel is the exact facade path a one-shot CLI invocation
    // runs: fresh pool, re-intern, rebind, rebuild the detection index.
    let open_cold = || {
        let mut handle =
            cfdclean::DatasetHandle::from_csv("bench", &csv_bytes).expect("workload csv");
        handle
            .bind_rules(&rules_text, "bench rules")
            .expect("workload rules");
        handle
    };
    let expected = open_cold().detect_report(5).expect("one-shot detect");

    let server = std::sync::Arc::new(Server::new(ServerConfig::default()).expect("server"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let serve = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.serve_tcp(listener).expect("serve loop"))
    };
    let mut client = Client::connect_tcp(addr).expect("connect");
    fn ok_text(resp: Response) -> String {
        match resp {
            Response::Ok { text, .. } => text,
            Response::Err { kind, message } => panic!("daemon error {kind:?}: {message}"),
        }
    }
    ok_text(
        client
            .request(&Request::Open {
                name: "bench".into(),
                csv: csv_bytes.clone(),
                rules: Some(rules_text.clone()),
                weights: None,
            })
            .expect("open"),
    );
    let detect_req = Request::Detect {
        dataset: "bench".into(),
        limit: 5,
    };
    let warm_answer = ok_text(client.request(&detect_req).expect("daemon detect"));
    assert_eq!(
        warm_answer, expected,
        "daemon detect diverged from the one-shot facade"
    );

    h.run("server/rtt_ping", || {
        ok_text(client.request(black_box(&Request::Ping)).expect("ping")).len()
    });
    let warm = h.run("server/detect_warm_2k", || {
        ok_text(client.request(black_box(&detect_req)).expect("detect")).len()
    });
    let cold = h.run("server/detect_oneshot_cold_2k", || {
        open_cold()
            .detect_report(black_box(5))
            .expect("detect")
            .len()
    });
    h.run("server/repair_warm_2k", || {
        match client
            .request(black_box(&Request::Repair {
                dataset: "bench".into(),
                spec: RepairSpec::default(),
                want_edits: false,
                want_stats: false,
            }))
            .expect("repair")
        {
            Response::Ok { blobs, .. } => blobs[0].len(),
            Response::Err { kind, message } => panic!("daemon error {kind:?}: {message}"),
        }
    });
    ok_text(client.request(&Request::Shutdown).expect("shutdown"));
    serve.join().expect("serve thread");
    let speedup = cold.median_ns / warm.median_ns;
    eprintln!("request latency (cold one-shot / warm daemon detect): {speedup:.2}x");
    speedup
}

/// The streaming headline: steady-state window latency against a warm
/// `RepairSession` — feed a fixed batch of dirty inserts plus the
/// deletes that undo the previous cycle, advance the watermark, repair
/// the closed windows over the resident detection index — vs the cold
/// per-window one-shot path a scheduled batch job pays (fresh handle:
/// re-parse the base CSV, re-intern the dictionary, rebuild the index,
/// insert the same batch). Each warm cycle inserts then deletes the
/// same eight rows, so the relation and pool footprint are identical at
/// every iteration and the timings measure a steady state. Returns the
/// cold/warm median ratio (> 1 means the resident session wins). Both
/// kernels are single-threaded at the default config, so the number is
/// meaningful on a 1-CPU runner, unlike the thread-scaling entries.
fn bench_stream(h: &mut Harness) -> f64 {
    use cfdclean::{DatasetHandle, StreamConfig};
    use std::cell::Cell;

    let w = workload(2_000, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let mut clean_csv = Vec::new();
    cfd_model::csv::write_relation(&w.dopt, &mut clean_csv).expect("render clean csv");
    let mut dirty_csv = Vec::new();
    cfd_model::csv::write_relation(&noise.dirty, &mut dirty_csv).expect("render dirty csv");
    let rules_text: String = w
        .sigma
        .sources()
        .iter()
        .map(|c| cfd_cfd::parser::render_cfd(w.dopt.schema(), c) + "\n")
        .collect();
    // The event batch: eight rows the noise actually perturbed, so every
    // window has repair work to do (a clean row would only exercise the
    // staging path).
    let clean_text = String::from_utf8(clean_csv.clone()).expect("utf8 csv");
    let dirty_text = String::from_utf8(dirty_csv).expect("utf8 csv");
    let header = clean_text.lines().next().expect("csv header").to_string();
    let rows: Vec<String> = clean_text
        .lines()
        .zip(dirty_text.lines())
        .skip(1)
        .filter(|(c, d)| c != d)
        .map(|(_, d)| d.to_string())
        .take(8)
        .collect();
    assert_eq!(rows.len(), 8, "5% noise must perturb at least eight rows");
    let batch_csv = format!("{header}\n{}\n", rows.join("\n")).into_bytes();

    let mut handle = DatasetHandle::from_csv("stream-bench", &clean_csv).expect("workload csv");
    handle
        .bind_rules(&rules_text, "bench rules")
        .expect("workload rules");
    let base_rows = handle.relation().len();
    let pool_baseline = handle.relation().pool().len();
    handle
        .open_stream(StreamConfig::tumbling(16))
        .expect("open stream");

    // One cycle: inserts land in window e/16, the deletes undoing them in
    // window e/16 + 1, and one advance closes both — so every iteration
    // leaves the relation exactly as it found it.
    let epoch = Cell::new(0u64);
    let cycle = |handle: &mut DatasetHandle| {
        let e = epoch.get();
        let base = handle.stream_info().expect("stream open").next_tuple_id;
        let mut ev = String::new();
        for (i, row) in rows.iter().enumerate() {
            ev.push_str(&format!("i {} {row}\n", e + 1 + i as u64));
        }
        for i in 0..rows.len() as u32 {
            ev.push_str(&format!("d {} {}\n", e + 17 + u64::from(i), base + i));
        }
        handle.stream_feed(&ev).expect("feed");
        let closed = handle.stream_advance(e + 32).expect("advance");
        epoch.set(e + 32);
        closed
    };

    // Sanity, un-timed: the batch repairs (every insert commits, edits
    // flow) and the delete window restores the baseline.
    let first = cycle(&mut handle);
    assert_eq!(first.len(), 2, "one cycle closes two windows");
    assert_eq!(
        first.iter().map(|r| r.cancelled).sum::<usize>(),
        0,
        "the bench batch must commit in full"
    );
    assert!(
        first.iter().map(|r| r.edits).sum::<usize>() > 0,
        "dirty arrivals must produce window edits"
    );
    assert_eq!(
        handle.relation().len(),
        base_rows,
        "delete window must restore the relation"
    );

    let warm = h.run("stream/window_warm_8ev_2k", || {
        cycle(black_box(&mut handle))
            .iter()
            .map(|r| r.edits)
            .sum::<usize>()
    });
    let (flushed, report) = handle.stream_close().expect("close stream");
    assert!(flushed.is_empty(), "all windows were advanced");
    assert_eq!(
        handle.relation().pool().len(),
        pool_baseline,
        "closing the stream must return the pool to its pre-stream footprint \
         ({})",
        report.summary()
    );

    let cold = h.run("stream/window_cold_oneshot_8ev_2k", || {
        let mut cold = DatasetHandle::from_csv("stream-bench", &clean_csv).expect("workload csv");
        cold.bind_rules(&rules_text, "bench rules")
            .expect("workload rules");
        cold.insert(black_box(&batch_csv), None, Ordering::Violations, 1)
            .expect("insert")
            .modified
    });
    let speedup = cold.median_ns / warm.median_ns;
    eprintln!("window latency (cold one-shot / warm stream): {speedup:.2}x");
    speedup
}

/// Run-environment metadata, recorded into `BENCH_kernels.json` alongside
/// the timings so the numbers carry their own context: how many CPUs the
/// container actually had (the thread-scaling entries are only meaningful
/// ≥ 2) and which kernel/feature switches were live.
fn record_metadata(h: &mut Harness) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    h.record("meta/container_cpus", cpus as f64);
    h.record(
        "meta/feature_parallel",
        f64::from(u8::from(cfg!(feature = "parallel"))),
    );
    h.record(
        "meta/simd_enabled",
        f64::from(u8::from(cfd_model::simd_enabled())),
    );
}

/// Interning footprint of the process-default shared pool, recorded
/// after the workloads have run: tracks dictionary growth per bench run
/// (dataset-scoped pools free theirs when the relation drops; the
/// shared pool is the one that can only grow).
fn record_pool_bytes(h: &mut Harness) {
    h.record(
        "meta/pool_bytes",
        cfd_model::ValuePool::shared().approx_bytes() as f64,
    );
}

/// The interned-vs-string headline: index build and full detection on the
/// §7.1 generated workload at 5% noise.
fn bench_interned_vs_string(h: &mut Harness) -> (f64, f64) {
    let w = workload(2_000, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    // The widest LHS list in Σ (phi1's [AC, PN]-shaped lists dominate).
    let lhs = w
        .sigma
        .iter()
        .next()
        .expect("non-empty sigma")
        .lhs()
        .to_vec();
    // Materialized once, outside the timed regions: the old Tuple held
    // its Values inline, so the string kernels read without pool access.
    let rows = resolve_rows(&noise.dirty);

    let build_interned = h.run("index_build/interned_2k", || {
        HashIndex::build(black_box(&noise.dirty), black_box(&lhs)).group_count()
    });
    let build_string = h.run("index_build/string_2k", || {
        string_keyed_index(black_box(&rows), black_box(&lhs)).len()
    });

    // Sanity: both kernels must agree before their timings mean anything.
    let id_total = detect(&noise.dirty, &w.sigma).total;
    let str_total = string_keyed_detect(&rows, &w.sigma);
    assert_eq!(
        id_total, str_total,
        "reference detector disagrees with the engine"
    );

    let detect_interned = h.run("detect/interned_2k_5pct", || {
        detect(black_box(&noise.dirty), black_box(&w.sigma)).total
    });
    let detect_string = h.run("detect/string_2k_5pct", || {
        string_keyed_detect(black_box(&rows), black_box(&w.sigma))
    });

    let build_speedup = build_string.median_ns / build_interned.median_ns;
    let detect_speedup = detect_string.median_ns / detect_interned.median_ns;
    eprintln!("index build speedup (string/interned): {build_speedup:.2}x");
    eprintln!("detection speedup  (string/interned): {detect_speedup:.2}x");
    (build_speedup, detect_speedup)
}

fn bench_vio_of_candidate(h: &mut Harness) {
    let w = workload(2_000, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let engine = cfd_cfd::violation::Engine::build(&noise.dirty, &w.sigma);
    let probe = noise.dirty.tuple(TupleId(0)).unwrap();
    h.run("detect/vio_of_candidate", || {
        engine.vio_of(black_box(&noise.dirty), black_box(&probe), None)
    });
}

/// The speculative-resolution headline: whole `BATCHREPAIR` runs on the
/// same workload, sequential loop vs the speculative plan/validate/commit
/// loop at 4 threads × k=16. The stats assertion pins byte-equivalence
/// before any timing means anything; the measured abort rate and commit
/// counts are recorded alongside the timings (CI records them — not yet
/// gated — so the win and its failure mode stay observable). Returns the
/// serial/speculative median ratio (> 1 means speculation wins).
fn bench_resolution(h: &mut Harness) -> f64 {
    let w = workload(2_000, 7);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let serial_cfg = BatchConfig {
        parallelism: Parallelism::serial(),
        speculate: 0,
        ..Default::default()
    };
    let spec_cfg = BatchConfig {
        parallelism: Parallelism::threads(4),
        speculate: 16,
        ..Default::default()
    };
    let reference = batch_repair(&noise.dirty, &w.sigma, serial_cfg.clone()).unwrap();
    let spec = batch_repair(&noise.dirty, &w.sigma, spec_cfg.clone()).unwrap();
    assert_eq!(
        reference.stats, spec.stats,
        "speculative repair diverged from serial"
    );
    let sched = spec.speculation.expect("speculative stats");
    let ser = h.run("repair_resolution/serial_2k", || {
        batch_repair(
            black_box(&noise.dirty),
            black_box(&w.sigma),
            serial_cfg.clone(),
        )
        .unwrap()
        .stats
        .steps
    });
    let par = h.run("repair_resolution/spec4x16_2k", || {
        batch_repair(
            black_box(&noise.dirty),
            black_box(&w.sigma),
            spec_cfg.clone(),
        )
        .unwrap()
        .stats
        .steps
    });
    h.record(
        "repair_resolution/abort_rate_pct",
        sched.abort_rate() * 100.0,
    );
    h.record("repair_resolution/commits", sched.commits as f64);
    h.record("repair_resolution/planned", sched.planned as f64);
    let speedup = ser.median_ns / par.median_ns;
    eprintln!(
        "resolution speedup (serial/spec4x16): {speedup:.2}x, abort rate {:.1}%",
        sched.abort_rate() * 100.0
    );
    speedup
}

fn bench_equivalence(h: &mut Harness) {
    h.run("equivalence/merge_chain_10k", || {
        let mut eq = EqClasses::new(10_000, 1, |_, _| 1.0);
        for t in 1..10_000u32 {
            eq.merge(
                Cell::new(TupleId(t - 1), AttrId(0)),
                Cell::new(TupleId(t), AttrId(0)),
            )
            .unwrap();
        }
        black_box(eq.class_count())
    });
}

fn bench_lhs_index(h: &mut Harness) {
    let w = workload(5_000, 9);
    let idx = LhsIndexes::build(&w.dopt, &w.sigma);
    let probe = w.dopt.tuple(TupleId(17)).unwrap();
    let variable: Vec<_> = w.sigma.iter().filter(|n| !n.is_constant()).collect();
    h.run("lhs_index/validate_tuple_all_variable_cfds", || {
        variable
            .iter()
            .all(|n| idx.satisfies(black_box(n), black_box(&probe)))
    });
}

fn bench_value_index(h: &mut Harness) {
    // active domain of the street attribute of a 5k workload
    let w = workload(5_000, 11);
    let adom = cfd_model::ActiveDomain::of_relation(&w.dopt);
    let str_attr = w.dopt.schema().attr("STR").unwrap();
    let idx = ValueIndex::build(&adom, str_attr);
    let probe = cfd_model::ValueId::of(&Value::str("Walnot St"));
    h.run("value_index/nearest_banded", || {
        idx.nearest(black_box(probe), 6, false)
    });
    h.run("value_index/nearest_naive", || {
        idx.nearest_naive(black_box(probe), 6, false)
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "smoke") {
        smoke();
    }
    let json_path = args.iter().position(|a| a == "json").map(|i| {
        args.get(i + 1)
            // cargo appends its own flags (e.g. `--bench`) after the
            // user's; never mistake one for an output path.
            .filter(|p| !p.starts_with('-'))
            .cloned()
            .unwrap_or_else(default_json_path)
    });

    let mut h = Harness::new();
    record_metadata(&mut h);
    bench_distance(&mut h);
    let pricing_speedup = bench_pricing(&mut h);
    let scan_speedup = bench_constant_scan(&mut h);
    let (build_speedup, detect_speedup) = bench_interned_vs_string(&mut h);
    let (col_build_speedup, col_detect_speedup) = bench_row_vs_column(&mut h);
    let census_speedup = bench_census(&mut h);
    let resolution_speedup = bench_resolution(&mut h);
    let (load_speedup, mmap_speedup) = bench_load(&mut h);
    let server_speedup = bench_server_latency(&mut h);
    let stream_speedup = bench_stream(&mut h);
    bench_vio_of_candidate(&mut h);
    bench_equivalence(&mut h);
    bench_lhs_index(&mut h);
    bench_value_index(&mut h);
    record_pool_bytes(&mut h);
    record_peak_rss(&mut h);

    println!("\n{}", h.table());
    println!("pricing speedup (scalar/bit-parallel): {pricing_speedup:.2}x");
    println!("constant scan speedup (scalar/simd): {scan_speedup:.2}x");
    println!("index build speedup (string/interned): {build_speedup:.2}x");
    println!("detection speedup  (string/interned): {detect_speedup:.2}x");
    println!("index build speedup (row/columnar): {col_build_speedup:.2}x");
    println!("detection speedup  (row/columnar): {col_detect_speedup:.2}x");
    println!("census build speedup (serial/sharded4): {census_speedup:.2}x");
    println!("resolution speedup (serial/spec4x16): {resolution_speedup:.2}x");
    println!("load speedup (csv/snapshot): {load_speedup:.2}x");
    println!("snapshot open speedup (eager/mmap): {mmap_speedup:.2}x");
    println!("request latency (cold one-shot / warm daemon): {server_speedup:.2}x");
    println!("window latency (cold one-shot / warm stream): {stream_speedup:.2}x");
    if let Some(path) = json_path {
        h.write_json(&path).expect("write bench json");
        println!("wrote {path}");
    }
}
