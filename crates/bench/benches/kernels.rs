//! Microbenchmarks of the hot kernels underlying both repair algorithms:
//! DL distance, violation detection, equivalence-class operations,
//! LHS-index validation, and nearest-value search.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cfd_bench::workload;
use cfd_cfd::violation::{detect, Engine};
use cfd_gen::{inject, NoiseConfig};
use cfd_model::{AttrId, TupleId, Value};
use cfd_repair::cluster::ValueIndex;
use cfd_repair::distance::{dl_distance, dl_distance_bounded};
use cfd_repair::equivalence::{Cell, EqClasses};
use cfd_repair::lhs_index::LhsIndexes;

fn bench_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("dl_distance");
    for (a, b) in [("19014", "10012"), ("Springfield", "Sprignfeild"), ("Walnut St", "Wall St")] {
        g.bench_with_input(BenchmarkId::new("exact", format!("{a}/{b}")), &(a, b), |bench, (a, b)| {
            bench.iter(|| dl_distance(black_box(a), black_box(b)))
        });
        g.bench_with_input(BenchmarkId::new("bounded2", format!("{a}/{b}")), &(a, b), |bench, (a, b)| {
            bench.iter(|| dl_distance_bounded(black_box(a), black_box(b), 2))
        });
    }
    g.finish();
}

fn bench_detection(c: &mut Criterion) {
    let w = workload(2_000, 7);
    let noise = inject(&w.dopt, &w.world, &NoiseConfig { rate: 0.05, ..Default::default() });
    let mut g = c.benchmark_group("violation_detection");
    g.sample_size(10);
    g.bench_function("detect_2k_5pct", |b| {
        b.iter(|| detect(black_box(&noise.dirty), black_box(&w.sigma)))
    });
    let engine = Engine::build(&noise.dirty, &w.sigma);
    let probe = noise.dirty.tuple(TupleId(0)).unwrap().clone();
    g.bench_function("vio_of_candidate", |b| {
        b.iter(|| engine.vio_of(black_box(&noise.dirty), black_box(&probe), None))
    });
    g.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut g = c.benchmark_group("equivalence");
    g.bench_function("merge_chain_10k", |b| {
        b.iter(|| {
            let mut eq = EqClasses::new(10_000, 1, |_, _| 1.0);
            for t in 1..10_000u32 {
                eq.merge(
                    Cell::new(TupleId(t - 1), AttrId(0)),
                    Cell::new(TupleId(t), AttrId(0)),
                )
                .unwrap();
            }
            black_box(eq.class_count())
        })
    });
    g.finish();
}

fn bench_lhs_index(c: &mut Criterion) {
    let w = workload(5_000, 9);
    let idx = LhsIndexes::build(&w.dopt, &w.sigma);
    let probe = w.dopt.tuple(TupleId(17)).unwrap().clone();
    let variable: Vec<_> = w.sigma.iter().filter(|n| !n.is_constant()).collect();
    let mut g = c.benchmark_group("lhs_index");
    g.bench_function("validate_tuple_all_variable_cfds", |b| {
        b.iter(|| {
            variable
                .iter()
                .all(|n| idx.satisfies(black_box(n), black_box(&probe)))
        })
    });
    g.finish();
}

fn bench_value_index(c: &mut Criterion) {
    // active domain of the street attribute of a 5k workload
    let w = workload(5_000, 11);
    let adom = cfd_model::ActiveDomain::of_relation(&w.dopt);
    let str_attr = w.dopt.schema().attr("STR").unwrap();
    let idx = ValueIndex::build(&adom, str_attr);
    let probe = Value::str("Walnot St");
    let mut g = c.benchmark_group("value_index");
    g.bench_function("nearest_banded", |b| {
        b.iter(|| idx.nearest(black_box(&probe), 6, false))
    });
    g.bench_function("nearest_naive", |b| {
        b.iter(|| idx.nearest_naive(black_box(&probe), 6, false))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_distance,
    bench_detection,
    bench_equivalence,
    bench_lhs_index,
    bench_value_index
);
criterion_main!(benches);
