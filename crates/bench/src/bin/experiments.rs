//! The experiment driver: regenerates every figure of §7.
//!
//! ```text
//! experiments [--scale small|full] [--seed N] [--json DIR] <fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|all>
//! ```
//!
//! Figures 9/10/13 share one sweep (they are three views of the same
//! runs), as do 14/15. Output goes to stdout as aligned tables; `--json`
//! additionally writes machine-readable series for downstream plotting.

use std::io::Write as _;

use cfd_bench::harness::json_escape;
use cfd_bench::{fig11, fig12, fig14_15, fig8, fig9_10_13, render_table, Scale, Series};

struct Args {
    scale: Scale,
    seed: u64,
    json_dir: Option<String>,
    figures: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Small,
        seed: 42,
        json_dir: None,
        figures: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = match v.as_str() {
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--json" => {
                args.json_dir = Some(it.next().ok_or("--json needs a directory")?);
            }
            "--help" | "-h" => {
                return Err("usage: experiments [--scale small|full] [--seed N] [--json DIR] <figures…|all>".to_string());
            }
            fig if fig.starts_with("fig") || fig == "all" => {
                args.figures.push(fig.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.figures.is_empty() {
        args.figures.push("all".to_string());
    }
    Ok(args)
}

fn write_json(dir: &str, name: &str, series: &[Series]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    // Hand-rolled JSON: the container has no network, so serde cannot be
    // vendored; the payload shape is trivial.
    let mut out = String::from("[\n");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "  {{\n    \"label\": \"{}\",\n    \"points\": [\n",
            json_escape(&s.label)
        ));
        for (pi, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"x\": {}, \"precision\": {}, \"recall\": {}, \"seconds\": {} }}{}\n",
                p.x,
                p.precision,
                p.recall,
                p.seconds,
                if pi + 1 < s.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]\n  }}{}\n",
            if si + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    let mut f = std::fs::File::create(format!("{dir}/{name}.json"))?;
    writeln!(f, "{out}")?;
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let wants = |name: &str| args.figures.iter().any(|f| f == name || f == "all");
    let emit = |name: &str, series: &[Series]| {
        if let Some(dir) = &args.json_dir {
            if let Err(e) = write_json(dir, name, series) {
                eprintln!("warning: could not write {name}.json: {e}");
            }
        }
    };

    eprintln!(
        "scale: {:?} (base {} tuples), seed {}",
        args.scale,
        args.scale.base_tuples(),
        args.seed
    );

    if wants("fig8") {
        let series = fig8(args.scale, args.seed);
        let prec_series: Vec<Series> = series
            .iter()
            .filter(|s| s.label.contains("Prec"))
            .cloned()
            .collect();
        let recall_series: Vec<Series> = series
            .iter()
            .filter(|s| s.label.contains("Recall"))
            .cloned()
            .collect();
        println!(
            "{}",
            render_table(
                "Figure 8: Efficacy of CFDs vs FDs — precision (BatchRepair)",
                "noise %",
                &prec_series,
                |p| p.precision,
                "%"
            )
        );
        println!(
            "{}",
            render_table(
                "Figure 8: Efficacy of CFDs vs FDs — recall (BatchRepair)",
                "noise %",
                &recall_series,
                |p| p.recall,
                "%"
            )
        );
        emit("fig8", &series);
    }

    if wants("fig9") || wants("fig10") || wants("fig13") {
        let series = fig9_10_13(args.scale, args.seed);
        if wants("fig9") {
            println!(
                "{}",
                render_table(
                    "Figure 9: Precision vs noise rate",
                    "noise %",
                    &series,
                    |p| p.precision,
                    "%"
                )
            );
            emit("fig9", &series);
        }
        if wants("fig10") {
            println!(
                "{}",
                render_table(
                    "Figure 10: Recall vs noise rate",
                    "noise %",
                    &series,
                    |p| p.recall,
                    "%"
                )
            );
            emit("fig10", &series);
        }
        if wants("fig13") {
            println!(
                "{}",
                render_table(
                    "Figure 13: Runtime vs noise rate",
                    "noise %",
                    &series,
                    |p| p.seconds,
                    "s"
                )
            );
            emit("fig13", &series);
        }
    }

    if wants("fig11") {
        let series = fig11(args.scale, args.seed);
        println!(
            "{}",
            render_table(
                "Figure 11: Scalability of BatchRepair (ρ = 5%)",
                "tuples",
                &series,
                |p| p.seconds,
                "s"
            )
        );
        emit("fig11", &series);
    }

    if wants("fig12") {
        let series = fig12(args.scale, args.seed);
        println!(
            "{}",
            render_table(
                "Figure 12: IncRepair vs BatchRepair on small insertions",
                "#inserted",
                &series,
                |p| p.seconds,
                "s"
            )
        );
        emit("fig12", &series);
    }

    if wants("fig14") || wants("fig15") {
        let series = fig14_15(args.scale, args.seed);
        if wants("fig14") {
            println!(
                "{}",
                render_table(
                    "Figure 14: Accuracy vs % of constant-CFD violations (ρ = 5%)",
                    "const %",
                    &series,
                    |p| p.precision, // Recall-labelled series carry recall below
                    "%"
                )
            );
            let recall_view: Vec<Series> = series
                .iter()
                .filter(|s| s.label.contains("Recall"))
                .cloned()
                .collect();
            println!(
                "{}",
                render_table(
                    "Figure 14 (recall view)",
                    "const %",
                    &recall_view,
                    |p| p.recall,
                    "%"
                )
            );
            emit("fig14", &series);
        }
        if wants("fig15") {
            // one runtime row per algorithm (Prec/Recall share runs)
            let timing: Vec<Series> = series
                .iter()
                .filter(|s| s.label.contains("(Prec)"))
                .map(|s| Series {
                    label: s.label.replace(" (Prec)", ""),
                    points: s.points.clone(),
                })
                .collect();
            println!(
                "{}",
                render_table(
                    "Figure 15: Runtime vs % of constant-CFD violations (ρ = 5%)",
                    "const %",
                    &timing,
                    |p| p.seconds,
                    "s"
                )
            );
            emit("fig15", &series);
        }
    }
}
