//! A minimal, dependency-free micro-benchmark harness.
//!
//! The container this workspace builds in has no network, so Criterion
//! cannot be vendored; the `harness = false` bench binaries use this
//! module instead. Methodology: warm up, size an inner batch so one batch
//! takes ≥ ~5 ms (amortizing timer overhead), run a fixed number of
//! batches, and report the median ns/iteration — the estimator least
//! sensitive to scheduler noise. Results render as an aligned table and
//! can be dumped as JSON for baselines checked into the repo.

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::Instant;

/// Re-exported opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One benchmark's measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Group / label, e.g. `"index_build/interned"`.
    pub label: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Minimum observed batch average, nanoseconds.
    pub min_ns: f64,
    /// Iterations per batch used.
    pub batch: u64,
}

/// A collection of measurements with uniform methodology.
pub struct Harness {
    /// Number of timed batches per benchmark.
    pub batches: usize,
    /// Target wall-clock per batch, nanoseconds.
    pub target_batch_ns: u128,
    results: Vec<Measurement>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            batches: 11,
            target_batch_ns: 5_000_000,
            results: Vec::new(),
        }
    }
}

impl Harness {
    /// A harness with default methodology.
    pub fn new() -> Self {
        Harness::default()
    }

    /// A harness for expensive benchmarks (whole repair runs): fewer
    /// batches, no batching beyond a single iteration.
    pub fn coarse() -> Self {
        Harness {
            batches: 5,
            target_batch_ns: 0,
            results: Vec::new(),
        }
    }

    /// Time `f`, recording the result under `label`. Returns the
    /// measurement for immediate inspection.
    pub fn run<T>(&mut self, label: &str, mut f: impl FnMut() -> T) -> Measurement {
        // Warm-up and batch sizing.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= self.target_batch_ns || batch >= 1 << 20 {
                break;
            }
            // Grow towards the target, at least doubling.
            batch = (batch * 2).max(
                ((self.target_batch_ns as f64 / (elapsed.max(1)) as f64) * batch as f64) as u64,
            );
        }
        let mut per_iter: Vec<f64> = (0..self.batches)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    std_black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let m = Measurement {
            label: label.to_string(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            batch,
        };
        eprintln!("{:<44} {:>14} /iter", m.label, fmt_ns(m.median_ns));
        self.results.push(m.clone());
        m
    }

    /// Record an already-measured scalar under `label` (e.g. a rate or a
    /// counter surfaced by a timed run). Rendered through the same table
    /// and JSON as timings — `median_ns`/`min_ns` carry the value, and
    /// `batch: 0` marks the entry as a recorded metric, not a timing.
    pub fn record(&mut self, label: &str, value: f64) {
        let m = Measurement {
            label: label.to_string(),
            median_ns: value,
            min_ns: value,
            batch: 0,
        };
        eprintln!("{:<44} {:>14} (recorded)", m.label, value);
        self.results.push(m);
    }

    /// All measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Render the results as an aligned table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>14} {:>14}\n",
            "benchmark", "median", "min"
        ));
        for m in &self.results {
            if m.batch == 0 {
                // A recorded metric (see `record`), not a timing: print
                // the raw value instead of pretending it is nanoseconds.
                out.push_str(&format!(
                    "{:<44} {:>14} {:>14}\n",
                    m.label,
                    format!("{:.1}", m.median_ns),
                    "(recorded)"
                ));
                continue;
            }
            out.push_str(&format!(
                "{:<44} {:>14} {:>14}\n",
                m.label,
                fmt_ns(m.median_ns),
                fmt_ns(m.min_ns)
            ));
        }
        out
    }

    /// Write the measurements as a JSON array (hand-rolled: no serde in
    /// the offline container).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "[")?;
        for (i, m) in self.results.iter().enumerate() {
            writeln!(
                f,
                "  {{ \"label\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"batch\": {} }}{}",
                json_escape(&m.label),
                m.median_ns,
                m.min_ns,
                m.batch,
                if i + 1 < self.results.len() { "," } else { "" }
            )?;
        }
        writeln!(f, "]")?;
        Ok(())
    }
}

/// Escape a string for a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human formatting for nanosecond figures.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut h = Harness {
            batches: 3,
            target_batch_ns: 10_000,
            results: Vec::new(),
        };
        let m = h.run("noop-ish", || black_box(1u64 + black_box(2)));
        assert!(m.median_ns > 0.0);
        assert_eq!(h.results().len(), 1);
        assert!(h.table().contains("noop-ish"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut h = Harness {
            batches: 3,
            target_batch_ns: 1_000,
            results: Vec::new(),
        };
        h.run("a", || black_box(0));
        let dir = std::env::temp_dir().join("cfd_bench_harness_test.json");
        let path = dir.to_str().unwrap();
        h.write_json(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.contains("\"label\": \"a\""));
        std::fs::remove_file(path).ok();
    }
}
