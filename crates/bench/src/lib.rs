//! # cfd-bench — the experiment harness of §7
//!
//! One runner per figure of the paper's evaluation, shared by the
//! `experiments` binary and the Criterion benches:
//!
//! | id | paper figure | runner |
//! |----|--------------|--------|
//! | F8  | Efficacy of CFDs vs FDs          | [`fig8`] |
//! | F9  | Precision vs noise rate          | [`fig9_10_13`] |
//! | F10 | Recall vs noise rate             | [`fig9_10_13`] |
//! | F11 | Scalability of BATCHREPAIR       | [`fig11`] |
//! | F12 | Scalability of INCREPAIR         | [`fig12`] |
//! | F13 | Runtime vs noise rate            | [`fig9_10_13`] |
//! | F14 | Accuracy vs % constant-CFD noise | [`fig14_15`] |
//! | F15 | Time vs % constant-CFD noise     | [`fig14_15`] |
//!
//! The paper ran 60k–300k tuples on a 2007 Xserve; [`Scale`] defaults to a
//! 10× reduction so the full suite finishes in minutes, `Scale::Full`
//! restores the paper's sizes. Absolute numbers differ from the paper —
//! the *shapes* (who wins, how curves trend) are the reproduction target;
//! EXPERIMENTS.md records both sides.

use std::time::Instant;

use cfd_gen::{generate, inject, GenConfig, NoiseConfig, RunSummary, Workload};
use cfd_repair::{
    batch_repair, inc_repair, repair_via_incremental, BatchConfig, IncConfig, Ordering,
};

/// Experiment scale: paper sizes or a 10× reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 10× smaller than the paper (default): base 6k tuples, Fig. 11
    /// sweeps 10k–30k.
    Small,
    /// The paper's sizes: base 60k tuples, Fig. 11 sweeps 100k–300k.
    Full,
}

impl Scale {
    /// The base database size (the paper's "60K tuples").
    pub fn base_tuples(self) -> usize {
        match self {
            Scale::Small => 6_000,
            Scale::Full => 60_000,
        }
    }

    /// The Fig. 11 sweep sizes (the paper's 100k–300k).
    pub fn fig11_sizes(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![10_000, 15_000, 20_000, 25_000, 30_000],
            Scale::Full => vec![100_000, 150_000, 200_000, 250_000, 300_000],
        }
    }
}

/// Which repair algorithm a series describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// `BATCHREPAIR` with the cost-ordered PICKNEXT.
    Batch,
    /// L-INCREPAIR (linear scan) in the §5.3 whole-database mode.
    IncLinear,
    /// V-INCREPAIR (fewest violations first).
    IncViolations,
    /// W-INCREPAIR (highest weight first).
    IncWeight,
}

impl Algo {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Batch => "BatchRepair",
            Algo::IncLinear => "L-IncRepair",
            Algo::IncViolations => "V-IncRepair",
            Algo::IncWeight => "W-IncRepair",
        }
    }

    /// All four algorithms in the paper's legend order.
    pub fn all() -> [Algo; 4] {
        [
            Algo::Batch,
            Algo::IncViolations,
            Algo::IncWeight,
            Algo::IncLinear,
        ]
    }
}

pub mod harness;

/// Generate the standard workload for a given size and seed.
pub fn workload(n_tuples: usize, seed: u64) -> Workload {
    generate(&GenConfig::sized(n_tuples, seed))
}

/// Run one algorithm on a dirty database and summarize quality + time.
pub fn run_algo(algo: Algo, dirty: &cfd_model::Relation, w: &Workload) -> RunSummary {
    let t0 = Instant::now();
    let repair = match algo {
        Algo::Batch => {
            batch_repair(dirty, &w.sigma, BatchConfig::default())
                .expect("batch repair succeeds")
                .repair
        }
        Algo::IncLinear | Algo::IncViolations | Algo::IncWeight => {
            let ordering = match algo {
                Algo::IncLinear => Ordering::Linear,
                Algo::IncViolations => Ordering::Violations,
                _ => Ordering::Weight,
            };
            repair_via_incremental(
                dirty,
                &w.sigma,
                IncConfig {
                    ordering,
                    ..Default::default()
                },
            )
            .expect("incremental repair succeeds")
            .repair
        }
    };
    RunSummary::evaluate(dirty, &repair, &w.dopt, t0.elapsed())
}

/// One measured point of a series.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// The x-axis value (noise %, tuple count, … depending on the figure).
    pub x: f64,
    /// Precision (%).
    pub precision: f64,
    /// Recall (%).
    pub recall: f64,
    /// Runtime in seconds.
    pub seconds: f64,
}

impl Point {
    fn from_summary(x: f64, s: &RunSummary) -> Point {
        Point {
            x,
            precision: s.precision * 100.0,
            recall: s.recall * 100.0,
            seconds: s.elapsed.as_secs_f64(),
        }
    }
}

/// A named series of points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The measured points.
    pub points: Vec<Point>,
}

/// Figure 8 — efficacy of CFDs vs FDs: `BATCHREPAIR` accuracy under the
/// full Σ vs under the embedded FDs only, ρ ∈ 2%..10%.
pub fn fig8(scale: Scale, seed: u64) -> Vec<Series> {
    // Half the base size: the FD-only repairs have no constant anchors to
    // prune with, so they run an order of magnitude longer than the CFD
    // side; the accuracy gap (the figure's point) is scale-insensitive.
    let w = workload(scale.base_tuples() / 2, seed);
    let fd_sigma = w.sigma.embedded_fds().expect("embedded FDs normalize");
    let mut cfd_prec = Vec::new();
    let mut cfd_rec = Vec::new();
    let mut fd_prec = Vec::new();
    let mut fd_rec = Vec::new();
    for rate_pct in [2, 4, 6, 8, 10] {
        let rate = rate_pct as f64 / 100.0;
        let noise = inject(
            &w.dopt,
            &w.world,
            &NoiseConfig {
                rate,
                seed,
                ..Default::default()
            },
        );
        let s_cfd = run_algo(Algo::Batch, &noise.dirty, &w);
        cfd_prec.push(Point::from_summary(rate_pct as f64, &s_cfd));
        cfd_rec.push(Point::from_summary(rate_pct as f64, &s_cfd));
        // same dirty data, FD-only Σ
        let t0 = Instant::now();
        let repair = batch_repair(&noise.dirty, &fd_sigma, BatchConfig::default())
            .expect("fd repair succeeds")
            .repair;
        let s_fd = RunSummary::evaluate(&noise.dirty, &repair, &w.dopt, t0.elapsed());
        fd_prec.push(Point::from_summary(rate_pct as f64, &s_fd));
        fd_rec.push(Point::from_summary(rate_pct as f64, &s_fd));
    }
    vec![
        Series {
            label: "BatchRepair (CFD/Prec)".into(),
            points: cfd_prec,
        },
        Series {
            label: "BatchRepair (CFD/Recall)".into(),
            points: cfd_rec,
        },
        Series {
            label: "BatchRepair (FD/Prec)".into(),
            points: fd_prec,
        },
        Series {
            label: "BatchRepair (FD/Recall)".into(),
            points: fd_rec,
        },
    ]
}

/// Figures 9, 10 and 13 share their runs: all four algorithms, ρ ∈
/// 1%..10%, reporting precision (F9), recall (F10) and runtime (F13).
pub fn fig9_10_13(scale: Scale, seed: u64) -> Vec<Series> {
    let w = workload(scale.base_tuples(), seed);
    let mut series: Vec<Series> = Algo::all()
        .iter()
        .map(|a| Series {
            label: a.label().to_string(),
            points: Vec::new(),
        })
        .collect();
    for rate_pct in 1..=10 {
        let rate = rate_pct as f64 / 100.0;
        let noise = inject(
            &w.dopt,
            &w.world,
            &NoiseConfig {
                rate,
                seed,
                ..Default::default()
            },
        );
        for (i, algo) in Algo::all().iter().enumerate() {
            let s = run_algo(*algo, &noise.dirty, &w);
            series[i]
                .points
                .push(Point::from_summary(rate_pct as f64, &s));
        }
    }
    series
}

/// Figure 11 — scalability of `BATCHREPAIR`: runtime over database sizes
/// at ρ = 5%.
pub fn fig11(scale: Scale, seed: u64) -> Vec<Series> {
    let mut points = Vec::new();
    for n in scale.fig11_sizes() {
        let w = workload(n, seed);
        let noise = inject(
            &w.dopt,
            &w.world,
            &NoiseConfig {
                rate: 0.05,
                seed,
                ..Default::default()
            },
        );
        let s = run_algo(Algo::Batch, &noise.dirty, &w);
        points.push(Point::from_summary(n as f64, &s));
    }
    vec![Series {
        label: "BatchRepair".into(),
        points,
    }]
}

/// Figure 12 — the incremental setting: a clean base of `base_tuples`,
/// inserting 10..70 dirty tuples; `INCREPAIR` (on ΔD only) vs
/// `BATCHREPAIR` (from scratch on D ⊕ ΔD).
pub fn fig12(scale: Scale, seed: u64) -> Vec<Series> {
    let w = workload(scale.base_tuples(), seed);
    let mut inc_points = Vec::new();
    let mut batch_points = Vec::new();
    for n_insert in [10usize, 20, 30, 40, 50, 60, 70] {
        // Build ΔD: fresh clean tuples drawn from the same world, then
        // corrupt every one of them ("inserted 10 to 70 dirty tuples").
        let delta_workload = generate(&GenConfig {
            n_tuples: n_insert,
            seed: seed ^ 0x5eed,
            world: w.world.config.clone(),
        });
        let delta_noise = inject(
            &delta_workload.dopt,
            &w.world,
            &NoiseConfig {
                rate: 1.0,
                seed,
                ..Default::default()
            },
        );
        let delta: Vec<cfd_model::Tuple> = delta_noise
            .dirty
            .iter()
            .map(|(_, t)| t.to_tuple())
            .collect();
        // INCREPAIR on ΔD against clean D.
        let t0 = Instant::now();
        let out = inc_repair(&w.dopt, &delta, &w.sigma, IncConfig::default())
            .expect("incremental insert repair succeeds");
        let inc_secs = t0.elapsed().as_secs_f64();
        debug_assert!(cfd_cfd::check(&out.repair, &w.sigma));
        inc_points.push(Point {
            x: n_insert as f64,
            precision: 0.0,
            recall: 0.0,
            seconds: inc_secs,
        });
        // BATCHREPAIR on D ⊕ ΔD from scratch.
        let mut full = w.dopt.clone();
        for t in &delta {
            full.insert(t.clone()).expect("same schema");
        }
        let t0 = Instant::now();
        let _ = batch_repair(&full, &w.sigma, BatchConfig::default()).expect("batch succeeds");
        batch_points.push(Point {
            x: n_insert as f64,
            precision: 0.0,
            recall: 0.0,
            seconds: t0.elapsed().as_secs_f64(),
        });
    }
    vec![
        Series {
            label: "IncRepair".into(),
            points: inc_points,
        },
        Series {
            label: "BatchRepair".into(),
            points: batch_points,
        },
    ]
}

/// Figures 14 and 15 — the constant-vs-variable violation mix: share of
/// constant-CFD noise from 20% to 80% at ρ = 5%, reporting accuracy (F14)
/// and runtime (F15) for `BATCHREPAIR` and V-INCREPAIR.
pub fn fig14_15(scale: Scale, seed: u64) -> Vec<Series> {
    let w = workload(scale.base_tuples(), seed);
    let mut series = vec![
        Series {
            label: "BatchRepair (Prec)".into(),
            points: Vec::new(),
        },
        Series {
            label: "BatchRepair (Recall)".into(),
            points: Vec::new(),
        },
        Series {
            label: "IncRepair (Prec)".into(),
            points: Vec::new(),
        },
        Series {
            label: "IncRepair (Recall)".into(),
            points: Vec::new(),
        },
    ];
    for share_pct in [20, 30, 40, 50, 60, 70, 80] {
        let noise = inject(
            &w.dopt,
            &w.world,
            &NoiseConfig {
                rate: 0.05,
                seed,
                constant_share: share_pct as f64 / 100.0,
                ..Default::default()
            },
        );
        let b = run_algo(Algo::Batch, &noise.dirty, &w);
        let v = run_algo(Algo::IncViolations, &noise.dirty, &w);
        series[0]
            .points
            .push(Point::from_summary(share_pct as f64, &b));
        series[1]
            .points
            .push(Point::from_summary(share_pct as f64, &b));
        series[2]
            .points
            .push(Point::from_summary(share_pct as f64, &v));
        series[3]
            .points
            .push(Point::from_summary(share_pct as f64, &v));
    }
    series
}

/// Render a metric of a set of series as an aligned text table.
pub fn render_table(
    title: &str,
    x_label: &str,
    series: &[Series],
    metric: impl Fn(&Point) -> f64,
    unit: &str,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{x_label:>12}");
    for s in series {
        let _ = write!(out, "  {:>24}", s.label);
    }
    let _ = writeln!(out);
    let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..n {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.x))
            .unwrap_or(0.0);
        let _ = write!(out, "{x:>12}");
        for s in series {
            match s.points.get(i) {
                Some(p) => {
                    let _ = write!(out, "  {:>22.2}{unit}", metric(p));
                }
                None => {
                    let _ = write!(out, "  {:>24}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sizes() {
        assert_eq!(Scale::Small.base_tuples(), 6_000);
        assert_eq!(Scale::Full.base_tuples(), 60_000);
        assert_eq!(Scale::Small.fig11_sizes().len(), 5);
    }

    #[test]
    fn algo_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = Algo::all().iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn render_table_aligns_series() {
        let series = vec![Series {
            label: "X".into(),
            points: vec![Point {
                x: 1.0,
                precision: 99.5,
                recall: 80.0,
                seconds: 0.5,
            }],
        }];
        let table = render_table("T", "rate", &series, |p| p.precision, "%");
        assert!(table.contains("# T"));
        assert!(table.contains("99.50%"));
    }

    #[test]
    fn tiny_run_algo_smoke() {
        let w = workload(300, 1);
        let noise = inject(
            &w.dopt,
            &w.world,
            &NoiseConfig {
                rate: 0.05,
                ..Default::default()
            },
        );
        let s = run_algo(Algo::Batch, &noise.dirty, &w);
        assert!(s.recall >= 0.0 && s.precision >= 0.0);
    }
}
