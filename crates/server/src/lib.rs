//! # cfd-server
//!
//! A resident repair daemon over the [`cfdclean::Session`] facade: it
//! keeps datasets' relations, their dataset-scoped value-pool
//! dictionaries, and their built detection indexes warm in memory, and
//! serves detect / repair / insert / snapshot / evict operations over a
//! framed socket protocol — TCP or (on Unix) Unix-domain. One-shot CLI
//! runs re-parse the CSV, re-intern the dictionary, and rebuild the
//! violation-detection index on every invocation; the daemon pays those
//! costs once per `open` and amortizes them across every subsequent
//! request.
//!
//! Everything is hand-rolled over `std` — `std::net` listeners, one
//! thread per connection, `mpsc` channels for the timeout plumbing — so
//! the crate adds no dependencies beyond the workspace.
//!
//! ## Determinism
//!
//! A sequence of requests against a daemon produces **byte-identical**
//! results to the equivalent sequence of one-shot CLI invocations, at
//! every `CFD_THREADS` × `CFD_SPECULATE` × `CFD_SIMD` setting — repair
//! CSVs, edit logs, violation reports, all of it
//! (`tests/server_differential.rs` pins the matrix). Two properties
//! carry the contract:
//!
//! * repairs never mutate the resident relation (they return fresh
//!   output), so a dataset's state is a function of its open + insert
//!   history, not of what was detected or repaired in between;
//! * inserts seal their delta dictionary entries
//!   ([`cfd_model::ValuePool::seal_ids`]) instead of free-listing them,
//!   so the pool's append-order id assignment — which the repair
//!   algorithms' `FINDV` tie-breaks observe — matches a fresh process
//!   run for run.
//!
//! ## Concurrency
//!
//! Datasets live behind per-dataset reader/writer locks inside the
//! shared [`Session`](cfdclean::Session): detects and repairs on the
//! same dataset share its warm engine concurrently; inserts and evicts
//! take the write side and serialize. Requests on one connection run in
//! order; parallelism across datasets comes from opening multiple
//! connections. An optional LRU capacity bound auto-evicts the
//! least-recently-used dataset — eviction retires the dataset's
//! dictionary entries and compacts the pool, returning its memory.
//!
//! ## Wire protocol
//!
//! The protocol is a synchronous request/response exchange of
//! length-prefixed frames. It has no version negotiation, no
//! compression, and no encryption — it is a loopback/localhost protocol
//! for tooling, not an internet-facing service.
//!
//! ### Framing
//!
//! ```text
//! frame := len:u32-LE payload:[u8; len]
//! ```
//!
//! `len` counts payload bytes only. Frames above the server's limit
//! (default 32 MiB, hard ceiling 64 MiB) are refused before allocation
//! and the connection closes, since the boundary of the unread payload
//! is lost. EOF exactly at a frame boundary is a clean disconnect; EOF
//! inside a frame is an error. A malformed payload inside an intact
//! frame gets an `Err` response of kind `Protocol` and the connection
//! continues.
//!
//! ### Primitives
//!
//! All integers little-endian.
//!
//! ```text
//! u8, u32      fixed-width integers
//! bool         u8: 0 | 1
//! bytes        len:u32 data:[u8; len]
//! str          bytes, UTF-8 validated
//! opt<T>       tag:u8 (0 = absent | 1 = present) [T]
//! ```
//!
//! ### Requests
//!
//! First byte is the opcode; fields follow in order.
//!
//! ```text
//! 0x01 Ping
//! 0x02 Open          name:str csv:bytes rules:opt<str> weights:opt<bytes>
//! 0x03 OpenSnapshot  name:str
//! 0x04 Detect        dataset:str limit:u32
//! 0x05 Repair        dataset:str algorithm:str pick:str k:u32
//!                    threads:opt<u32> speculate:opt<u32> simd:opt<bool>
//!                    want_edits:bool want_stats:bool
//! 0x06 Insert        dataset:str csv:bytes weights:opt<bytes>
//!                    ordering:u8 ('v'|'w'|'l') k:u32
//! 0x07 SnapshotSave  dataset:str as_name:str
//! 0x08 SnapshotInfo  name:opt<str>          (absent = list the catalog)
//! 0x09 Evict         dataset:str
//! 0x0a List
//! 0x0b Stats
//! 0x0c Shutdown
//! 0x0d StreamOpen    dataset:str size:u64 slide:u64
//!                    ordering:u8 ('v'|'w'|'l') k:u32
//! 0x0e StreamFeed    dataset:str events:bytes
//! 0x0f StreamAdvance dataset:str watermark:u64
//! 0x10 StreamClose   dataset:str
//! ```
//!
//! `algorithm` is the CLI spelling (`batch`, `v-inc`, `w-inc`,
//! `l-inc`); `pick` is `global` or `dependency`; unset `threads` /
//! `speculate` / `simd` defer to the daemon's environment exactly as
//! the CLI's unset flags do.
//!
//! The stream opcodes drive a windowed repair session
//! ([`cfdclean::RepairSession`], at most one per dataset, opened on a
//! clean base with bound rules). `StreamFeed`'s `events` payload is the
//! UTF-8 text event format — `i <ts> <csv-row>` / `d <ts> <tuple-id>`,
//! one event per line, `#` comments — queued without repairing.
//! `StreamAdvance` closes every window ending at or before `watermark`
//! and repairs each closed window's arrivals; `StreamClose` flushes all
//! remaining queued windows and reclaims the stream's dictionary slots.
//! All four take the dataset's write lock (they mutate stream state),
//! so they serialize with inserts and with each other; detects and
//! repairs on the same dataset keep answering from the unmodified
//! resident relation throughout.
//!
//! ### Responses
//!
//! ```text
//! ok  := 0x00 text:str nblobs:u8 blob:bytes ...
//! err := 0x01 kind:u8 message:str
//! ```
//!
//! `text` is the human-readable result (identical to the corresponding
//! CLI command's output where one exists). `blobs` carry binary
//! attachments: `Repair` → `[repaired_csv]` or
//! `[repaired_csv, edit_log]`; `Insert` → `[merged_csv]`;
//! `StreamAdvance` and `StreamClose` → one `.cfde` edit log per closed
//! window, paired in order with the `window k [...]` summary lines of
//! `text` (`nblobs` is a `u8`, so an advance that would close more than
//! 255 event-bearing windows is refused with a `Stream` error — advance
//! in smaller watermark steps); every other opcode sends none. Error
//! kinds:
//!
//! ```text
//! 0 UnknownDataset  1 AlreadyOpen  2 Evicted    3 NoRules
//! 4 NoCatalog       5 Data         6 Rules      7 Snapshot
//! 8 Repair          9 Internal    10 Protocol  11 Timeout
//! 12 Poisoned      13 Stream
//! ```
//!
//! `Timeout` (the per-request deadline passed; the work keeps running
//! and later requests on the connection queue behind it) and
//! `Protocol` are daemon-only; the rest map 1:1 onto
//! [`cfdclean::SessionError`]. `Poisoned` means a previous request
//! panicked while holding the dataset's lock — the dataset answers this
//! kind until it is evicted (eviction always succeeds and reclaims its
//! memory); other datasets are unaffected.
//!
//! ### Batching
//!
//! Batching is client-side pipelining: write N request frames, then
//! read N response frames ([`client::Client::batch`]). The server
//! processes each connection's requests strictly in order, so the
//! responses arrive in request order.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ErrorKind, ProtoError, RepairSpec, Request, Response, DEFAULT_MAX_FRAME, MAX_FRAME,
};
pub use server::{Server, ServerConfig};
