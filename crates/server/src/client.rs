//! A blocking client for the daemon: connect, send framed requests,
//! read framed responses. The batching entry point
//! ([`Client::batch`]) is client-side pipelining — all request frames
//! are written before any response is read, so a sequence of small
//! operations pays one round-trip, not N.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ProtoError, Request, Response,
    DEFAULT_MAX_FRAME,
};

/// Client-side failures: transport, codec, or the server hanging up
/// between a request and its response.
#[derive(Debug)]
pub enum ClientError {
    /// The connection could not be established or the stream failed.
    Io(io::Error),
    /// A response frame could not be decoded.
    Proto(ProtoError),
    /// The server closed the connection before answering.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            ClientError::Disconnected => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// The transport under a client — TCP everywhere, Unix-domain sockets
/// where the platform has them.
enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// One connection to a `cfd-server` daemon.
pub struct Client {
    stream: Transport,
    max_frame: usize,
}

impl Client {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream: Transport::Tcp(stream),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Ok(Client {
            stream: Transport::Unix(UnixStream::connect(path)?),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Override the frame-size limit (both directions). Must match the
    /// server's or large payloads will be refused.
    pub fn max_frame(mut self, max: usize) -> Client {
        self.max_frame = max;
        self
    }

    /// Send one request, wait for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req), self.max_frame)?;
        self.read_response()
    }

    /// Pipeline a batch: write every request frame, then read every
    /// response. Responses come back in request order; the server
    /// executes them sequentially on this connection.
    pub fn batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ClientError> {
        for req in reqs {
            write_frame(&mut self.stream, &encode_request(req), self.max_frame)?;
        }
        let mut responses = Vec::with_capacity(reqs.len());
        for _ in reqs {
            responses.push(self.read_response()?);
        }
        Ok(responses)
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream, self.max_frame)? {
            Some(frame) => Ok(decode_response(&frame)?),
            None => Err(ClientError::Disconnected),
        }
    }
}
