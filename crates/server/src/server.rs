//! The resident daemon: a [`Session`] kept warm behind a socket.
//!
//! One listener thread accepts connections; each connection gets two
//! threads — an **I/O thread** that owns the stream (frame reads, frame
//! writes, protocol-error replies) and a **worker thread** that executes
//! requests against the shared session. The split is what makes
//! per-request timeouts honest: the I/O thread waits on the worker's
//! result channel with a deadline and answers `Timeout` if it passes;
//! the worker finishes the computation in the background (it may hold a
//! dataset lock until then) and its stale result is discarded by
//! sequence number. Nothing is ever killed mid-repair, so locks are
//! never poisoned by the timeout path.
//!
//! Concurrency follows the facade's locking model: detect and repair
//! requests take a dataset's read lock and run concurrently; insert and
//! evict take the write lock and serialize. Requests on one connection
//! are processed in order (pipelining is the batching mechanism — see
//! [`crate::client::Client::batch`]); concurrency comes from opening
//! multiple connections.

use std::io::{self, Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use cfd_model::Catalog;
use cfd_repair::{Algorithm, Ordering, PickStrategy, RepairOptions};
use cfdclean::{read_cell, write_cell, Session, SessionError, StreamConfig, WindowResult};

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, ErrorKind, ProtoError, RepairSpec,
    Request, Response, DEFAULT_MAX_FRAME,
};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Snapshot catalog directory (enables the snapshot opcodes).
    pub catalog: Option<PathBuf>,
    /// LRU residency bound; `None` = unbounded.
    pub capacity: Option<usize>,
    /// Per-connection frame-size limit.
    pub max_frame: usize,
    /// Per-request deadline; `None` = wait forever.
    pub request_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            catalog: None,
            capacity: None,
            max_frame: DEFAULT_MAX_FRAME,
            request_timeout: None,
        }
    }
}

/// How the listener can be poked awake after a shutdown request flips
/// the flag (accept is blocking; a throwaway connection unblocks it).
#[derive(Clone)]
enum Wake {
    Tcp(std::net::SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Wake {
    fn poke(&self) {
        match self {
            Wake::Tcp(addr) => {
                let _ = std::net::TcpStream::connect(addr);
            }
            #[cfg(unix)]
            Wake::Unix(path) => {
                let _ = std::os::unix::net::UnixStream::connect(path);
            }
        }
    }
}

/// The daemon: shared session + configuration + shutdown flag. Cheap to
/// clone into connection threads via the inner `Arc`s.
pub struct Server {
    session: Arc<Session>,
    max_frame: usize,
    request_timeout: Option<Duration>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Build a server (opening the catalog when configured).
    pub fn new(config: ServerConfig) -> Result<Server, SessionError> {
        let mut session = Session::new();
        if let Some(dir) = &config.catalog {
            let catalog = Catalog::open(dir).map_err(|e| {
                SessionError::Snapshot(format!("cannot open catalog {}: {e}", dir.display()))
            })?;
            session = session.with_catalog(catalog);
        }
        if let Some(cap) = config.capacity {
            session = session.with_capacity(cap);
        }
        Ok(Server {
            session: Arc::new(session),
            max_frame: config.max_frame,
            request_timeout: config.request_timeout,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The shared session (tests inspect residency through this).
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// The shutdown flag; setting it plus poking the listener ends
    /// [`serve_tcp`](Server::serve_tcp) / [`serve_unix`](Server::serve_unix).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Serve connections on a bound TCP listener until a shutdown
    /// request arrives. Blocks the calling thread.
    pub fn serve_tcp(&self, listener: TcpListener) -> io::Result<()> {
        let wake = Wake::Tcp(listener.local_addr()?);
        for conn in listener.incoming() {
            if self.shutdown.load(AtomicOrdering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    // One frame is written as two small syscalls (length
                    // prefix, payload); without TCP_NODELAY the second
                    // waits out Nagle against the peer's delayed ACK
                    // (~40 ms per response on loopback).
                    let _ = stream.set_nodelay(true);
                    self.spawn_connection(stream, wake.clone())
                }
                Err(_) => continue,
            }
        }
        Ok(())
    }

    /// Serve connections on a bound Unix-domain listener until a
    /// shutdown request arrives. Blocks the calling thread. The socket
    /// file is left for the caller to unlink.
    #[cfg(unix)]
    pub fn serve_unix(&self, listener: UnixListener, path: PathBuf) -> io::Result<()> {
        let wake = Wake::Unix(path);
        for conn in listener.incoming() {
            if self.shutdown.load(AtomicOrdering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => self.spawn_connection(stream, wake.clone()),
                Err(_) => continue,
            }
        }
        Ok(())
    }

    fn spawn_connection<S: Read + Write + Send + 'static>(&self, stream: S, wake: Wake) {
        let session = self.session.clone();
        let shutdown = self.shutdown.clone();
        let max_frame = self.max_frame;
        let timeout = self.request_timeout;
        thread::spawn(move || {
            handle_connection(session, stream, max_frame, timeout, shutdown, wake);
        });
    }
}

/// The per-connection I/O loop. See the module docs for the two-thread
/// timeout design.
fn handle_connection<S: Read + Write>(
    session: Arc<Session>,
    mut stream: S,
    max_frame: usize,
    timeout: Option<Duration>,
    shutdown: Arc<AtomicBool>,
    wake: Wake,
) {
    let (req_tx, req_rx) = mpsc::channel::<(u64, Request)>();
    let (res_tx, res_rx) = mpsc::channel::<(u64, Response)>();
    let worker_session = session.clone();
    // Detached on purpose: if the connection dies while a repair is in
    // flight, the worker finishes (releasing its dataset lock) and then
    // exits when the request channel hangs up.
    thread::spawn(move || {
        for (seq, req) in req_rx {
            let resp = execute(&worker_session, &req);
            if res_tx.send((seq, resp)).is_err() {
                break;
            }
        }
    });

    let mut seq: u64 = 0;
    loop {
        let frame = match read_frame(&mut stream, max_frame) {
            Ok(Some(frame)) => frame,
            // Clean disconnect, mid-frame disconnect, transport error:
            // nothing sensible to reply to — exit and let the worker
            // drain.
            Ok(None) | Err(ProtoError::Truncated) | Err(ProtoError::Io(_)) => return,
            Err(e @ ProtoError::Oversized { .. }) => {
                // The offending payload was never read, so the frame
                // boundary is lost — answer and close.
                let _ = reply(
                    &mut stream,
                    &Response::err(ErrorKind::Protocol, e.to_string()),
                    max_frame,
                );
                return;
            }
            Err(e) => {
                let _ = reply(
                    &mut stream,
                    &Response::err(ErrorKind::Protocol, e.to_string()),
                    max_frame,
                );
                return;
            }
        };
        // Frame boundaries intact — a malformed payload is answered and
        // the connection continues.
        let req = match decode_request(&frame) {
            Ok(req) => req,
            Err(e) => {
                let ok = reply(
                    &mut stream,
                    &Response::err(ErrorKind::Protocol, format!("malformed request: {e}")),
                    max_frame,
                );
                if ok {
                    continue;
                }
                return;
            }
        };
        if matches!(req, Request::Shutdown) {
            // Answered inline, before the listener is poked: the poke
            // lets the accept loop (and typically the whole process)
            // exit, which must not race the reply onto a dead socket.
            let _ = reply(&mut stream, &Response::ok("shutting down"), max_frame);
            shutdown.store(true, AtomicOrdering::SeqCst);
            wake.poke();
            return;
        }
        seq += 1;
        if req_tx.send((seq, req)).is_err() {
            let _ = reply(
                &mut stream,
                &Response::err(ErrorKind::Internal, "request worker exited"),
                max_frame,
            );
            return;
        }
        let resp = await_result(&res_rx, seq, timeout);
        if !reply(&mut stream, &resp, max_frame) {
            return;
        }
    }
}

/// Wait for the worker's answer to request `seq`, discarding stale
/// results from previously timed-out requests.
fn await_result(
    res_rx: &mpsc::Receiver<(u64, Response)>,
    seq: u64,
    timeout: Option<Duration>,
) -> Response {
    let deadline = timeout.map(|t| Instant::now() + t);
    loop {
        let next = match deadline {
            Some(d) => res_rx.recv_timeout(d.saturating_duration_since(Instant::now())),
            None => res_rx
                .recv()
                .map_err(|_| mpsc::RecvTimeoutError::Disconnected),
        };
        match next {
            Ok((s, resp)) if s == seq => return resp,
            Ok(_) => continue, // stale result of a timed-out predecessor
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return Response::err(
                    ErrorKind::Timeout,
                    format!(
                        "request timed out after {:?} (still executing; later requests queue behind it)",
                        timeout.expect("deadline implies timeout")
                    ),
                );
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Response::err(ErrorKind::Internal, "request worker exited");
            }
        }
    }
}

fn reply<S: Write>(stream: &mut S, resp: &Response, max_frame: usize) -> bool {
    write_frame(stream, &encode_response(resp), max_frame).is_ok()
}

fn kind_of(e: &SessionError) -> ErrorKind {
    match e {
        SessionError::UnknownDataset(_) => ErrorKind::UnknownDataset,
        SessionError::AlreadyOpen(_) => ErrorKind::AlreadyOpen,
        SessionError::Evicted(_) => ErrorKind::Evicted,
        SessionError::NoRules(_) => ErrorKind::NoRules,
        SessionError::NoCatalog => ErrorKind::NoCatalog,
        SessionError::Data(_) => ErrorKind::Data,
        SessionError::Rules(_) => ErrorKind::Rules,
        SessionError::Snapshot(_) => ErrorKind::Snapshot,
        SessionError::Repair(_) => ErrorKind::Repair,
        SessionError::Internal(_) => ErrorKind::Internal,
        SessionError::Poisoned(_) => ErrorKind::Poisoned,
        SessionError::Stream(_) => ErrorKind::Stream,
    }
}

fn parse_ordering(byte: u8) -> Result<Ordering, SessionError> {
    match byte {
        b'v' => Ok(Ordering::Violations),
        b'w' => Ok(Ordering::Weight),
        b'l' => Ok(Ordering::Linear),
        other => Err(SessionError::Data(format!(
            "unknown ordering {:?} (v, w, l)",
            other as char
        ))),
    }
}

/// Pack closed-window results into one response: summaries (plus an
/// optional trailer line) as the text, one `.cfde` edit log per window
/// as the blobs. The blob count field is a `u8`, so more than 255
/// event-bearing windows cannot ride one response — the caller must
/// advance in smaller watermark steps.
fn window_response(
    results: Vec<WindowResult>,
    trailer: Option<String>,
) -> Result<Response, SessionError> {
    if results.len() > 255 {
        return Err(SessionError::Stream(format!(
            "{} windows closed at once; a response carries at most 255 — advance in smaller watermark steps",
            results.len()
        )));
    }
    let mut lines: Vec<String> = Vec::new();
    let mut blobs = Vec::with_capacity(results.len());
    if results.is_empty() {
        lines.push("no window closed".to_string());
    }
    for r in results {
        lines.push(r.summary());
        blobs.push(r.edit_log);
    }
    lines.extend(trailer);
    Ok(Response::Ok {
        text: lines.join("\n"),
        blobs,
    })
}

/// Lower a wire [`RepairSpec`] to [`RepairOptions`], rejecting unknown
/// spellings with the CLI's error texts.
fn spec_to_options(spec: &RepairSpec) -> Result<RepairOptions, SessionError> {
    let algorithm: Algorithm = spec.algorithm.parse().map_err(|_| {
        SessionError::Data(format!(
            "unknown algorithm {:?} (batch, v-inc, w-inc, l-inc)",
            spec.algorithm
        ))
    })?;
    let pick = match spec.pick.as_str() {
        "global" => PickStrategy::GlobalBest,
        "dependency" => PickStrategy::DependencyOrdered,
        other => return Err(SessionError::Data(format!("unknown pick {other:?}"))),
    };
    let mut opts = RepairOptions::new()
        .algorithm(algorithm)
        .pick(pick)
        .k(spec.k as usize);
    if let Some(n) = spec.threads {
        opts = opts.threads(n as usize);
    }
    if let Some(s) = spec.speculate {
        opts = opts.speculate(s as usize);
    }
    if let Some(simd) = spec.simd {
        opts = opts.simd(simd);
    }
    Ok(opts)
}

/// Execute one request against the session. Every [`SessionError`]
/// becomes a typed error response; this function never panics on user
/// input.
fn execute(session: &Session, req: &Request) -> Response {
    match run(session, req) {
        Ok(resp) => resp,
        Err(e) => Response::err(kind_of(&e), e.to_string()),
    }
}

fn run(session: &Session, req: &Request) -> Result<Response, SessionError> {
    use std::fmt::Write as _;
    match req {
        Request::Ping => Ok(Response::ok("pong")),
        Request::Open {
            name,
            csv,
            rules,
            weights,
        } => {
            let installed = session.open_csv(name, csv, rules.as_deref(), weights.as_deref())?;
            let tuples = {
                let cell = read_cell(&installed.entry)?;
                cell.handle()?.relation().len()
            };
            let mut text = format!("opened {name:?}: {tuples} tuple(s)");
            for report in &installed.evicted {
                let _ = write!(text, "\n{}", report.summary());
            }
            Ok(Response::ok(text))
        }
        Request::OpenSnapshot { name, as_name } => {
            let installed = session.open_snapshot_as(name, as_name.as_deref())?;
            let tuples = {
                let cell = read_cell(&installed.entry)?;
                cell.handle()?.relation().len()
            };
            let mut text = match as_name {
                Some(alias) => {
                    format!("opened snapshot {name:?} as {alias:?}: {tuples} tuple(s)")
                }
                None => format!("opened snapshot {name:?}: {tuples} tuple(s)"),
            };
            for report in &installed.evicted {
                let _ = write!(text, "\n{}", report.summary());
            }
            Ok(Response::ok(text))
        }
        Request::Detect { dataset, limit } => {
            let entry = session.get(dataset)?;
            let cell = read_cell(&entry)?;
            let text = cell.handle()?.detect_report(*limit as usize)?;
            Ok(Response::ok(text))
        }
        Request::Repair {
            dataset,
            spec,
            want_edits,
            want_stats,
        } => {
            let opts = spec_to_options(spec)?;
            let entry = session.get(dataset)?;
            let cell = read_cell(&entry)?;
            let run = cell.handle()?.repair(&opts, *want_edits)?;
            let mut text = run.summary();
            if *want_stats {
                let _ = write!(text, "\n  {}", run.detail);
            }
            let mut blobs = vec![run.csv];
            if let Some(log) = run.edit_log {
                blobs.push(log);
            }
            Ok(Response::Ok { text, blobs })
        }
        Request::Insert {
            dataset,
            csv,
            weights,
            ordering,
            k,
        } => {
            let ordering = parse_ordering(*ordering)?;
            let entry = session.get(dataset)?;
            let mut cell = write_cell(&entry)?;
            let run = cell
                .handle_mut()?
                .insert(csv, weights.as_deref(), ordering, *k as usize)?;
            Ok(Response::Ok {
                text: run.summary(),
                blobs: vec![run.csv],
            })
        }
        Request::SnapshotSave { dataset, as_name } => {
            let (path, tuples) = session.save_snapshot(dataset, as_name)?;
            Ok(Response::ok(format!(
                "saved {tuples} tuple(s) as dataset {as_name:?} -> {}",
                path.display()
            )))
        }
        Request::SnapshotInfo { name } => Ok(Response::ok(snapshot_info_text(session, name)?)),
        Request::Evict { dataset } => {
            let report = session.evict(dataset)?;
            Ok(Response::ok(report.summary()))
        }
        Request::List => Ok(Response::ok(session.names().join("\n"))),
        Request::Stats => {
            let stats = session.stats();
            let mut text = format!("resident {} dataset(s)", stats.resident.len());
            if !stats.resident.is_empty() {
                let _ = write!(text, ": {}", stats.resident.join(", "));
            }
            match stats.capacity {
                Some(cap) => {
                    let _ = write!(text, "\ncapacity {cap}");
                }
                None => text.push_str("\ncapacity unbounded"),
            }
            let _ = write!(text, "\nauto-evictions {}", stats.auto_evictions);
            // Mapping accounting appends only when something is mapped,
            // so the baseline stats text (pinned by golden fixtures and
            // the LRU integration test) is unchanged for CSV-only use.
            if stats.mappings > 0 {
                let _ = write!(
                    text,
                    "\nmappings {}: {} dataset(s) mapped, {} mapped byte(s), {} owned byte(s)",
                    stats.mappings, stats.mapped_datasets, stats.mapped_bytes, stats.owned_bytes
                );
            }
            Ok(Response::ok(text))
        }
        // Never reaches the worker: the I/O thread answers shutdown
        // inline so the reply cannot race the process exiting.
        Request::Shutdown => Ok(Response::ok("shutting down")),
        Request::StreamOpen {
            dataset,
            size,
            slide,
            ordering,
            k,
        } => {
            let ordering = parse_ordering(*ordering)?;
            let entry = session.get(dataset)?;
            let mut cell = write_cell(&entry)?;
            let info = cell.handle_mut()?.open_stream(StreamConfig {
                size: *size,
                slide: *slide,
                ordering,
                k: *k as usize,
            })?;
            Ok(Response::ok(info.summary()))
        }
        Request::StreamFeed { dataset, events } => {
            let events = std::str::from_utf8(events)
                .map_err(|_| SessionError::Data("event batch is not valid UTF-8".to_string()))?;
            let entry = session.get(dataset)?;
            let mut cell = write_cell(&entry)?;
            let accepted = cell.handle_mut()?.stream_feed(events)?;
            Ok(Response::ok(format!("accepted {accepted} event(s)")))
        }
        Request::StreamAdvance { dataset, watermark } => {
            let entry = session.get(dataset)?;
            let mut cell = write_cell(&entry)?;
            let results = cell.handle_mut()?.stream_advance(*watermark)?;
            window_response(results, None)
        }
        Request::StreamClose { dataset } => {
            let entry = session.get(dataset)?;
            let mut cell = write_cell(&entry)?;
            let (flushed, report) = cell.handle_mut()?.stream_close()?;
            window_response(flushed, Some(report.summary()))
        }
    }
}

/// Render `snapshot info` output — the same block/list formats the CLI
/// prints, so golden fixtures compare across front ends.
fn snapshot_info_text(session: &Session, name: &Option<String>) -> Result<String, SessionError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    match name {
        Some(name) => {
            let info = session.snapshot_info(name)?;
            let _ = writeln!(out, "dataset {name:?}");
            let _ = writeln!(
                out,
                "  relation   {}({})",
                info.relation,
                info.attrs.join(", ")
            );
            let _ = writeln!(
                out,
                "  tuples     {} live / {} slot(s)",
                info.live, info.slots
            );
            let _ = writeln!(out, "  dictionary {} distinct value(s)", info.dict_entries);
            let _ = writeln!(
                out,
                "  rules      {}",
                if info.has_rules { "embedded" } else { "none" }
            );
            let _ = writeln!(out, "  file       {} byte(s)", info.bytes);
            for seg in session.snapshot_segments(name)? {
                let _ = writeln!(
                    out,
                    "  segment    {:<8} {} byte(s), checksum {}",
                    seg.name,
                    seg.payload_bytes,
                    if seg.checksum_ok { "ok" } else { "BAD" }
                );
            }
        }
        None => {
            let names = session.snapshot_names()?;
            if names.is_empty() {
                let dir = session
                    .catalog()
                    .map(|c| c.dir().display().to_string())
                    .unwrap_or_default();
                let _ = writeln!(out, "catalog {dir} is empty");
            } else {
                for n in names {
                    let info = session.snapshot_info(&n)?;
                    let _ = writeln!(
                        out,
                        "{n}: {} live tuple(s), {} distinct value(s){}",
                        info.live,
                        info.dict_entries,
                        if info.has_rules {
                            ", rules embedded"
                        } else {
                            ""
                        }
                    );
                }
            }
        }
    }
    Ok(out)
}
