//! Wire codec for the `cfd-server` protocol: length-prefixed frames,
//! request/response payload encoding, and the typed failures both ends
//! share. The byte-level layout is specified in the crate docs
//! ([`crate`]); this module is its only implementation — the server and
//! the client both encode and decode through these functions, so the two
//! ends cannot drift.
//!
//! Everything is hand-rolled over `std::io` — no serialization or
//! networking dependencies — and every read is bounds-checked: a
//! malformed or truncated payload produces a typed [`ProtoError`], never
//! a panic or an out-of-bounds slice.

use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling a frame length may never exceed, whatever the
/// configuration asks for (64 MiB).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Default per-connection frame-size limit (32 MiB) — comfortably above
/// any CSV the test workloads ship, small enough that a garbage length
/// prefix cannot make the server allocate unboundedly.
pub const DEFAULT_MAX_FRAME: usize = 32 * 1024 * 1024;

/// Protocol-level failures. [`ProtoError::Oversized`] and I/O errors end
/// the connection (the frame boundary is unrecoverable once a length
/// prefix is refused); a decode failure inside an intact frame is
/// answered with an error response and the connection continues.
#[derive(Debug)]
pub enum ProtoError {
    /// The stream or payload ended before a field was complete.
    Truncated,
    /// Bytes remained after a complete message was decoded.
    Trailing(usize),
    /// An unknown request opcode.
    BadOpcode(u8),
    /// An invalid tag byte (option/bool/status fields).
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A frame length prefix exceeded the negotiated maximum.
    Oversized { len: usize, max: usize },
    /// The underlying transport failed.
    Io(io::Error),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing byte(s) after message"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::BadTag(t) => write!(f, "invalid tag byte 0x{t:02x}"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes (max {max})")
            }
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// framing

/// Read one `u32`-LE length-prefixed frame. Returns `Ok(None)` on a
/// clean disconnect (EOF exactly at a frame boundary); EOF inside a
/// frame is [`ProtoError::Truncated`]. A length prefix above `max` is
/// rejected **before** allocating.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    let max = max.min(MAX_FRAME);
    if len > max {
        return Err(ProtoError::Oversized { len, max });
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e)
        }
    })?;
    Ok(Some(buf))
}

/// Write one length-prefixed frame and flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max: usize) -> Result<(), ProtoError> {
    let max = max.min(MAX_FRAME);
    if payload.len() > max {
        return Err(ProtoError::Oversized {
            len: payload.len(),
            max,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// primitive encode/decode

struct Enc(Vec<u8>);

impl Enc {
    fn new(opcode: u8) -> Enc {
        Enc(vec![opcode])
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.0.push(v as u8);
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }

    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(n) => {
                self.u8(1);
                self.u32(n);
            }
            None => self.u8(0),
        }
    }

    fn opt_bool(&mut self, v: Option<bool>) {
        match v {
            Some(b) => {
                self.u8(1);
                self.bool(b);
            }
            None => self.u8(0),
        }
    }

    fn opt_bytes(&mut self, v: Option<&[u8]>) {
        match v {
            Some(b) => {
                self.u8(1);
                self.bytes(b);
            }
            None => self.u8(0),
        }
    }

    fn opt_str(&mut self, v: Option<&str>) {
        self.opt_bytes(v.map(str::as_bytes));
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.pos).ok_or(ProtoError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let end = self.pos.checked_add(4).ok_or(ProtoError::Truncated)?;
        let chunk = self.buf.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(chunk.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let end = self.pos.checked_add(8).ok_or(ProtoError::Truncated)?;
        let chunk = self.buf.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(chunk.try_into().expect("8-byte slice")))
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(ProtoError::BadTag(t)),
        }
    }

    fn bytes(&mut self) -> Result<&'a [u8], ProtoError> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).ok_or(ProtoError::Truncated)?;
        let chunk = self.buf.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        Ok(chunk)
    }

    fn str(&mut self) -> Result<&'a str, ProtoError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| ProtoError::BadUtf8)
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(ProtoError::BadTag(t)),
        }
    }

    fn opt_bool(&mut self) -> Result<Option<bool>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bool()?)),
            t => Err(ProtoError::BadTag(t)),
        }
    }

    fn opt_bytes(&mut self) -> Result<Option<&'a [u8]>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes()?)),
            t => Err(ProtoError::BadTag(t)),
        }
    }

    fn opt_str(&mut self) -> Result<Option<&'a str>, ProtoError> {
        match self.opt_bytes()? {
            None => Ok(None),
            Some(b) => std::str::from_utf8(b)
                .map(Some)
                .map_err(|_| ProtoError::BadUtf8),
        }
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Trailing(self.buf.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------------
// requests

/// The shared repair knobs as the wire carries them — string spellings
/// identical to the CLI flags, lowered server-side to
/// [`cfd_repair::RepairOptions`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairSpec {
    /// `batch`, `v-inc`, `w-inc`, or `l-inc`.
    pub algorithm: String,
    /// `global` or `dependency`.
    pub pick: String,
    /// TUPLERESOLVE attribute-set size.
    pub k: u32,
    /// Explicit worker-thread override.
    pub threads: Option<u32>,
    /// Explicit speculation-depth override.
    pub speculate: Option<u32>,
    /// Explicit distance-kernel override.
    pub simd: Option<bool>,
}

impl Default for RepairSpec {
    fn default() -> Self {
        RepairSpec {
            algorithm: "batch".to_string(),
            pick: "global".to_string(),
            k: 2,
            threads: None,
            speculate: None,
            simd: None,
        }
    }
}

/// One request frame. See the crate docs for the per-opcode layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Open CSV bytes (plus optional rule text and weight CSV) as a
    /// named resident dataset.
    Open {
        name: String,
        csv: Vec<u8>,
        rules: Option<String>,
        weights: Option<Vec<u8>>,
    },
    /// Load a catalog snapshot as a resident dataset, optionally under
    /// a different dataset name (so one snapshot file can back several
    /// resident datasets sharing a single zero-copy mapping).
    OpenSnapshot {
        name: String,
        as_name: Option<String>,
    },
    /// Render the violation report for an open dataset.
    Detect { dataset: String, limit: u32 },
    /// Run a repair; the resident dataset is not mutated.
    Repair {
        dataset: String,
        spec: RepairSpec,
        want_edits: bool,
        want_stats: bool,
    },
    /// Incrementally repair a batch of new tuples against the dataset.
    Insert {
        dataset: String,
        csv: Vec<u8>,
        weights: Option<Vec<u8>>,
        /// `b'v'`, `b'w'`, or `b'l'`.
        ordering: u8,
        k: u32,
    },
    /// Persist an open dataset to the catalog.
    SnapshotSave { dataset: String, as_name: String },
    /// Describe one catalog snapshot, or list the catalog when `None`.
    SnapshotInfo { name: Option<String> },
    /// Evict an open dataset, returning its pool memory.
    Evict { dataset: String },
    /// Names of the open datasets.
    List,
    /// Session status.
    Stats,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
    /// Open a windowed streaming repair session on a dataset.
    StreamOpen {
        dataset: String,
        /// Window size `W` in timestamp units.
        size: u64,
        /// Window slide `S` (`1 ≤ S ≤ W`; `S = W` is tumbling).
        slide: u64,
        /// `b'v'`, `b'w'`, or `b'l'`.
        ordering: u8,
        k: u32,
    },
    /// Queue a batch of timestamped events (the `i <ts> <csv-row>` /
    /// `d <ts> <tuple-id>` text format) into the dataset's stream.
    StreamFeed { dataset: String, events: Vec<u8> },
    /// Advance the stream's watermark, closing and repairing every
    /// window that ends at or before it.
    StreamAdvance { dataset: String, watermark: u64 },
    /// Flush all queued windows and shut the dataset's stream down.
    StreamClose { dataset: String },
}

const OP_PING: u8 = 0x01;
const OP_OPEN: u8 = 0x02;
const OP_OPEN_SNAPSHOT: u8 = 0x03;
const OP_DETECT: u8 = 0x04;
const OP_REPAIR: u8 = 0x05;
const OP_INSERT: u8 = 0x06;
const OP_SNAPSHOT_SAVE: u8 = 0x07;
const OP_SNAPSHOT_INFO: u8 = 0x08;
const OP_EVICT: u8 = 0x09;
const OP_LIST: u8 = 0x0a;
const OP_STATS: u8 = 0x0b;
const OP_SHUTDOWN: u8 = 0x0c;
const OP_STREAM_OPEN: u8 = 0x0d;
const OP_STREAM_FEED: u8 = 0x0e;
const OP_STREAM_ADVANCE: u8 = 0x0f;
const OP_STREAM_CLOSE: u8 = 0x10;

/// Encode a request payload (the frame body, without the length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => Enc::new(OP_PING).0,
        Request::Open {
            name,
            csv,
            rules,
            weights,
        } => {
            let mut e = Enc::new(OP_OPEN);
            e.str(name);
            e.bytes(csv);
            e.opt_str(rules.as_deref());
            e.opt_bytes(weights.as_deref());
            e.0
        }
        Request::OpenSnapshot { name, as_name } => {
            let mut e = Enc::new(OP_OPEN_SNAPSHOT);
            e.str(name);
            e.opt_str(as_name.as_deref());
            e.0
        }
        Request::Detect { dataset, limit } => {
            let mut e = Enc::new(OP_DETECT);
            e.str(dataset);
            e.u32(*limit);
            e.0
        }
        Request::Repair {
            dataset,
            spec,
            want_edits,
            want_stats,
        } => {
            let mut e = Enc::new(OP_REPAIR);
            e.str(dataset);
            e.str(&spec.algorithm);
            e.str(&spec.pick);
            e.u32(spec.k);
            e.opt_u32(spec.threads);
            e.opt_u32(spec.speculate);
            e.opt_bool(spec.simd);
            e.bool(*want_edits);
            e.bool(*want_stats);
            e.0
        }
        Request::Insert {
            dataset,
            csv,
            weights,
            ordering,
            k,
        } => {
            let mut e = Enc::new(OP_INSERT);
            e.str(dataset);
            e.bytes(csv);
            e.opt_bytes(weights.as_deref());
            e.u8(*ordering);
            e.u32(*k);
            e.0
        }
        Request::SnapshotSave { dataset, as_name } => {
            let mut e = Enc::new(OP_SNAPSHOT_SAVE);
            e.str(dataset);
            e.str(as_name);
            e.0
        }
        Request::SnapshotInfo { name } => {
            let mut e = Enc::new(OP_SNAPSHOT_INFO);
            e.opt_str(name.as_deref());
            e.0
        }
        Request::Evict { dataset } => {
            let mut e = Enc::new(OP_EVICT);
            e.str(dataset);
            e.0
        }
        Request::List => Enc::new(OP_LIST).0,
        Request::Stats => Enc::new(OP_STATS).0,
        Request::Shutdown => Enc::new(OP_SHUTDOWN).0,
        Request::StreamOpen {
            dataset,
            size,
            slide,
            ordering,
            k,
        } => {
            let mut e = Enc::new(OP_STREAM_OPEN);
            e.str(dataset);
            e.u64(*size);
            e.u64(*slide);
            e.u8(*ordering);
            e.u32(*k);
            e.0
        }
        Request::StreamFeed { dataset, events } => {
            let mut e = Enc::new(OP_STREAM_FEED);
            e.str(dataset);
            e.bytes(events);
            e.0
        }
        Request::StreamAdvance { dataset, watermark } => {
            let mut e = Enc::new(OP_STREAM_ADVANCE);
            e.str(dataset);
            e.u64(*watermark);
            e.0
        }
        Request::StreamClose { dataset } => {
            let mut e = Enc::new(OP_STREAM_CLOSE);
            e.str(dataset);
            e.0
        }
    }
}

/// Decode a request payload. Rejects unknown opcodes, truncated fields,
/// bad tags, and trailing bytes with a typed error — never panics.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut d = Dec::new(payload);
    let op = d.u8()?;
    let req = match op {
        OP_PING => Request::Ping,
        OP_OPEN => Request::Open {
            name: d.str()?.to_string(),
            csv: d.bytes()?.to_vec(),
            rules: d.opt_str()?.map(str::to_string),
            weights: d.opt_bytes()?.map(<[u8]>::to_vec),
        },
        OP_OPEN_SNAPSHOT => Request::OpenSnapshot {
            name: d.str()?.to_string(),
            as_name: d.opt_str()?.map(str::to_string),
        },
        OP_DETECT => Request::Detect {
            dataset: d.str()?.to_string(),
            limit: d.u32()?,
        },
        OP_REPAIR => Request::Repair {
            dataset: d.str()?.to_string(),
            spec: RepairSpec {
                algorithm: d.str()?.to_string(),
                pick: d.str()?.to_string(),
                k: d.u32()?,
                threads: d.opt_u32()?,
                speculate: d.opt_u32()?,
                simd: d.opt_bool()?,
            },
            want_edits: d.bool()?,
            want_stats: d.bool()?,
        },
        OP_INSERT => Request::Insert {
            dataset: d.str()?.to_string(),
            csv: d.bytes()?.to_vec(),
            weights: d.opt_bytes()?.map(<[u8]>::to_vec),
            ordering: d.u8()?,
            k: d.u32()?,
        },
        OP_SNAPSHOT_SAVE => Request::SnapshotSave {
            dataset: d.str()?.to_string(),
            as_name: d.str()?.to_string(),
        },
        OP_SNAPSHOT_INFO => Request::SnapshotInfo {
            name: d.opt_str()?.map(str::to_string),
        },
        OP_EVICT => Request::Evict {
            dataset: d.str()?.to_string(),
        },
        OP_LIST => Request::List,
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_STREAM_OPEN => Request::StreamOpen {
            dataset: d.str()?.to_string(),
            size: d.u64()?,
            slide: d.u64()?,
            ordering: d.u8()?,
            k: d.u32()?,
        },
        OP_STREAM_FEED => Request::StreamFeed {
            dataset: d.str()?.to_string(),
            events: d.bytes()?.to_vec(),
        },
        OP_STREAM_ADVANCE => Request::StreamAdvance {
            dataset: d.str()?.to_string(),
            watermark: d.u64()?,
        },
        OP_STREAM_CLOSE => Request::StreamClose {
            dataset: d.str()?.to_string(),
        },
        other => return Err(ProtoError::BadOpcode(other)),
    };
    d.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// responses

/// Typed error kinds, mirroring [`cfdclean::SessionError`] plus the
/// transport-level failures only the daemon can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    UnknownDataset,
    AlreadyOpen,
    Evicted,
    NoRules,
    NoCatalog,
    Data,
    Rules,
    Snapshot,
    Repair,
    Internal,
    /// Malformed frame or payload.
    Protocol,
    /// The request exceeded the server's per-request timeout.
    Timeout,
    /// The dataset's lock is poisoned by a panicked request; evicting
    /// it recovers.
    Poisoned,
    /// A streaming-session failure: no stream open, already open, bad
    /// window geometry, malformed or late events, bad delete targets.
    Stream,
}

impl ErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            ErrorKind::UnknownDataset => 0,
            ErrorKind::AlreadyOpen => 1,
            ErrorKind::Evicted => 2,
            ErrorKind::NoRules => 3,
            ErrorKind::NoCatalog => 4,
            ErrorKind::Data => 5,
            ErrorKind::Rules => 6,
            ErrorKind::Snapshot => 7,
            ErrorKind::Repair => 8,
            ErrorKind::Internal => 9,
            ErrorKind::Protocol => 10,
            ErrorKind::Timeout => 11,
            ErrorKind::Poisoned => 12,
            ErrorKind::Stream => 13,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorKind, ProtoError> {
        Ok(match v {
            0 => ErrorKind::UnknownDataset,
            1 => ErrorKind::AlreadyOpen,
            2 => ErrorKind::Evicted,
            3 => ErrorKind::NoRules,
            4 => ErrorKind::NoCatalog,
            5 => ErrorKind::Data,
            6 => ErrorKind::Rules,
            7 => ErrorKind::Snapshot,
            8 => ErrorKind::Repair,
            9 => ErrorKind::Internal,
            10 => ErrorKind::Protocol,
            11 => ErrorKind::Timeout,
            12 => ErrorKind::Poisoned,
            13 => ErrorKind::Stream,
            t => return Err(ProtoError::BadTag(t)),
        })
    }
}

/// One response frame: a success payload (text plus opcode-specific
/// binary attachments — repair CSVs, edit logs) or a typed error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    Ok {
        /// Human-readable result text (deterministic: no timings, no
        /// machine-local paths except where the operation names one).
        text: String,
        /// Binary attachments, opcode-specific (e.g. repair → `[csv]`
        /// or `[csv, edit_log]`; insert → `[csv]`).
        blobs: Vec<Vec<u8>>,
    },
    Err {
        kind: ErrorKind,
        message: String,
    },
}

impl Response {
    /// A bare success with no attachments.
    pub fn ok(text: impl Into<String>) -> Response {
        Response::Ok {
            text: text.into(),
            blobs: Vec::new(),
        }
    }

    /// A typed error.
    pub fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Err {
            kind,
            message: message.into(),
        }
    }
}

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// Encode a response payload (the frame body, without the length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Ok { text, blobs } => {
            let mut e = Enc::new(STATUS_OK);
            e.str(text);
            e.u8(blobs.len() as u8);
            for b in blobs {
                e.bytes(b);
            }
            e.0
        }
        Response::Err { kind, message } => {
            let mut e = Enc::new(STATUS_ERR);
            e.u8(kind.to_u8());
            e.str(message);
            e.0
        }
    }
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut d = Dec::new(payload);
    let resp = match d.u8()? {
        STATUS_OK => {
            let text = d.str()?.to_string();
            let count = d.u8()? as usize;
            let mut blobs = Vec::with_capacity(count);
            for _ in 0..count {
                blobs.push(d.bytes()?.to_vec());
            }
            Response::Ok { text, blobs }
        }
        STATUS_ERR => Response::Err {
            kind: ErrorKind::from_u8(d.u8()?)?,
            message: d.str()?.to_string(),
        },
        t => return Err(ProtoError::BadTag(t)),
    };
    d.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) {
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Ping);
        round_trip(Request::Open {
            name: "cust".into(),
            csv: b"a,b\n1,2\n".to_vec(),
            rules: Some("phi: [a] -> [b]".into()),
            weights: None,
        });
        round_trip(Request::OpenSnapshot {
            name: "x".into(),
            as_name: None,
        });
        round_trip(Request::OpenSnapshot {
            name: "x".into(),
            as_name: Some("y".into()),
        });
        round_trip(Request::Detect {
            dataset: "cust".into(),
            limit: 5,
        });
        round_trip(Request::Repair {
            dataset: "cust".into(),
            spec: RepairSpec {
                algorithm: "v-inc".into(),
                pick: "dependency".into(),
                k: 3,
                threads: Some(2),
                speculate: None,
                simd: Some(false),
            },
            want_edits: true,
            want_stats: false,
        });
        round_trip(Request::Insert {
            dataset: "cust".into(),
            csv: b"a,b\n9,9\n".to_vec(),
            weights: Some(b"a,b\n1.0,0.5\n".to_vec()),
            ordering: b'w',
            k: 2,
        });
        round_trip(Request::SnapshotSave {
            dataset: "cust".into(),
            as_name: "cust-clean".into(),
        });
        round_trip(Request::SnapshotInfo { name: None });
        round_trip(Request::SnapshotInfo {
            name: Some("cust".into()),
        });
        round_trip(Request::Evict {
            dataset: "cust".into(),
        });
        round_trip(Request::List);
        round_trip(Request::Stats);
        round_trip(Request::Shutdown);
        round_trip(Request::StreamOpen {
            dataset: "cust".into(),
            size: u64::MAX,
            slide: 7,
            ordering: b'v',
            k: 1,
        });
        round_trip(Request::StreamFeed {
            dataset: "cust".into(),
            events: b"i 3 212,5556611,NYC,NY,10012\nd 5 0\n".to_vec(),
        });
        round_trip(Request::StreamAdvance {
            dataset: "cust".into(),
            watermark: 1 << 40,
        });
        round_trip(Request::StreamClose {
            dataset: "cust".into(),
        });
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::ok("pong"),
            Response::Ok {
                text: "repaired".into(),
                blobs: vec![b"a,b\n1,2\n".to_vec(), Vec::new()],
            },
            Response::err(ErrorKind::UnknownDataset, "no dataset named \"x\" is open"),
            Response::err(ErrorKind::Timeout, "request timed out"),
            Response::err(ErrorKind::Poisoned, "dataset \"x\" is poisoned"),
            Response::err(ErrorKind::Stream, "window 3: late event"),
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_produce_typed_errors_not_panics() {
        assert!(matches!(decode_request(&[]), Err(ProtoError::Truncated)));
        assert!(matches!(
            decode_request(&[0xff]),
            Err(ProtoError::BadOpcode(0xff))
        ));
        // Opcode valid, string length claims more bytes than present.
        assert!(matches!(
            decode_request(&[OP_EVICT, 200, 0, 0, 0, b'x']),
            Err(ProtoError::Truncated)
        ));
        // Option tag must be 0 or 1.
        let mut bad = encode_request(&Request::SnapshotInfo { name: None });
        bad[1] = 7;
        assert!(matches!(decode_request(&bad), Err(ProtoError::BadTag(7))));
        // Trailing garbage after a complete message.
        let mut trailing = encode_request(&Request::Ping);
        trailing.push(0);
        assert!(matches!(
            decode_request(&trailing),
            Err(ProtoError::Trailing(1))
        ));
        // Non-UTF-8 in a string field.
        let mut e = Vec::from([OP_EVICT]);
        e.extend_from_slice(&2u32.to_le_bytes());
        e.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(decode_request(&e), Err(ProtoError::BadUtf8)));
    }

    #[test]
    fn framing_is_bounded_and_eof_aware() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"hello"
        );
        // Clean EOF at the boundary.
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
        // A huge length prefix is rejected before allocation.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..], DEFAULT_MAX_FRAME),
            Err(ProtoError::Oversized { .. })
        ));
        // EOF mid-frame is truncation, not a clean close.
        let mut cut = Vec::new();
        write_frame(&mut cut, b"hello", DEFAULT_MAX_FRAME).unwrap();
        cut.truncate(6);
        assert!(matches!(
            read_frame(&mut &cut[..], DEFAULT_MAX_FRAME),
            Err(ProtoError::Truncated)
        ));
        // Writing above the limit is refused.
        assert!(matches!(
            write_frame(&mut Vec::new(), &[0u8; 16], 8),
            Err(ProtoError::Oversized { .. })
        ));
    }
}
