//! End-to-end tests of the daemon over real sockets.
//!
//! The contract under test: any request sequence against a resident
//! `cfd-server` produces byte-identical results to the equivalent
//! one-shot runs (the [`cfdclean::DatasetHandle`] facade, which the CLI
//! routes through) — across concurrent connections, across the
//! threads × speculation × SIMD corner matrix, and across
//! open → repair → evict cycles whose pool memory provably returns to
//! baseline. Robustness: malformed frames, oversized frames, and
//! mid-frame disconnects produce typed errors or clean closes, never a
//! wedged or crashed daemon.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use cfd_repair::RepairOptions;
use cfd_server::{
    Client, ErrorKind, RepairSpec, Request, Response, Server, ServerConfig, DEFAULT_MAX_FRAME,
};
use cfdclean::DatasetHandle;

const FIXTURES: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures");

fn fixture(name: &str) -> Vec<u8> {
    std::fs::read(Path::new(FIXTURES).join(name)).expect(name)
}

fn rules_text() -> String {
    String::from_utf8(fixture("cust_rules.txt")).expect("rules are UTF-8")
}

/// The serial one-shot equivalent of opening the `cust` fixtures — the
/// exact path `cfdclean detect`/`repair` runs.
fn one_shot_cust() -> DatasetHandle {
    let mut h = DatasetHandle::from_csv("cust", &fixture("cust_dirty.csv")).expect("fixture CSV");
    h.apply_weights(&fixture("cust_weights.csv"))
        .expect("fixture weights");
    h.bind_rules(&rules_text(), "rules").expect("fixture rules");
    h
}

fn open_cust_request(name: &str) -> Request {
    Request::Open {
        name: name.to_string(),
        csv: fixture("cust_dirty.csv"),
        rules: Some(rules_text()),
        weights: Some(fixture("cust_weights.csv")),
    }
}

struct Daemon {
    addr: SocketAddr,
    handle: thread::JoinHandle<()>,
}

fn start(config: ServerConfig) -> Daemon {
    let server = Arc::new(Server::new(config).expect("server config"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = thread::spawn(move || {
        server.serve_tcp(listener).expect("serve loop");
    });
    Daemon { addr, handle }
}

impl Daemon {
    fn client(&self) -> Client {
        Client::connect_tcp(self.addr).expect("connect")
    }

    fn stop(self) {
        let mut c = self.client();
        let _ = c.request(&Request::Shutdown);
        self.handle.join().expect("serve thread exits cleanly");
    }
}

fn ok(resp: Response) -> (String, Vec<Vec<u8>>) {
    match resp {
        Response::Ok { text, blobs } => (text, blobs),
        Response::Err { kind, message } => panic!("unexpected error {kind:?}: {message}"),
    }
}

fn err(resp: Response) -> (ErrorKind, String) {
    match resp {
        Response::Err { kind, message } => (kind, message),
        Response::Ok { text, .. } => panic!("unexpected success: {text}"),
    }
}

#[test]
fn golden_cust_pipeline_through_the_client_matches_the_fixtures() {
    let daemon = start(ServerConfig::default());
    let mut c = daemon.client();

    let (text, _) = ok(c.request(&open_cust_request("cust")).unwrap());
    assert_eq!(text, "opened \"cust\": 4 tuple(s)");

    // Detect: byte-identical to the one-shot facade (and thus the CLI).
    let expected = one_shot_cust();
    let (detect_text, _) = ok(c
        .request(&Request::Detect {
            dataset: "cust".into(),
            limit: 5,
        })
        .unwrap());
    assert_eq!(detect_text, expected.detect_report(5).unwrap());

    // Repair: the CSV and edit-log attachments equal the committed
    // fixtures pinned by the golden suites.
    let (repair_text, blobs) = ok(c
        .request(&Request::Repair {
            dataset: "cust".into(),
            spec: RepairSpec::default(),
            want_edits: true,
            want_stats: true,
        })
        .unwrap());
    assert_eq!(blobs.len(), 2, "repair answers [csv, edit_log]");
    assert_eq!(
        blobs[0],
        fixture("cust_repaired.csv"),
        "repair CSV diverged"
    );
    assert_eq!(blobs[1], fixture("cust_repair.cfde"), "edit log diverged");
    let run = expected.repair(&RepairOptions::new().k(2), true).unwrap();
    assert_eq!(
        repair_text,
        format!("{}\n  {}", run.summary(), run.detail),
        "stats line diverged from the one-shot run"
    );

    // The resident dataset was not mutated by the repair.
    let (again, _) = ok(c
        .request(&Request::Detect {
            dataset: "cust".into(),
            limit: 5,
        })
        .unwrap());
    assert_eq!(again, detect_text);

    daemon.stop();
}

#[test]
fn corner_matrix_repairs_are_byte_identical_through_the_daemon() {
    let daemon = start(ServerConfig::default());
    let mut c = daemon.client();
    ok(c.request(&open_cust_request("cust")).unwrap());

    let baseline = fixture("cust_repaired.csv");
    for threads in [1u32, 2, 8] {
        for speculate in [0u32, 8] {
            for simd in [false, true] {
                let (_, blobs) = ok(c
                    .request(&Request::Repair {
                        dataset: "cust".into(),
                        spec: RepairSpec {
                            threads: Some(threads),
                            speculate: Some(speculate),
                            simd: Some(simd),
                            ..RepairSpec::default()
                        },
                        want_edits: false,
                        want_stats: false,
                    })
                    .unwrap());
                assert_eq!(
                    blobs[0], baseline,
                    "threads={threads} speculate={speculate} simd={simd} diverged"
                );
            }
        }
    }
    daemon.stop();
}

#[test]
fn concurrent_connections_interleave_without_perturbing_results() {
    let daemon = start(ServerConfig::default());
    let mut setup = daemon.client();
    ok(setup.request(&open_cust_request("cust")).unwrap());
    // A second dataset whose inserts exercise the write-lock path while
    // the readers hammer `cust`: base = the clean repair fixture.
    ok(setup
        .request(&Request::Open {
            name: "clean".into(),
            csv: fixture("cust_repaired.csv"),
            rules: Some(rules_text()),
            weights: None,
        })
        .unwrap());

    let expected = one_shot_cust();
    let detect_expected = expected.detect_report(5).unwrap();
    let repair_expected = fixture("cust_repaired.csv");

    // The insert delta: one row consistent with the rules' zip pattern.
    let delta = b"id,name,PR,AC,PN,STR,CT,ST,zip\n\
                  c9,Quinn,p1,212,5551000,Fifth Ave,NYC,NY,10012\n"
        .to_vec();
    let mut probe = daemon.client();
    let (insert_expected_text, insert_expected_blobs) = ok(probe
        .request(&Request::Insert {
            dataset: "clean".into(),
            csv: delta.clone(),
            weights: None,
            ordering: b'v',
            k: 2,
        })
        .unwrap());

    let addr = daemon.addr;
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let detect_expected = detect_expected.clone();
            let repair_expected = repair_expected.clone();
            let insert_expected_text = insert_expected_text.clone();
            let insert_expected_blobs = insert_expected_blobs.clone();
            let delta = delta.clone();
            thread::spawn(move || {
                let mut c = Client::connect_tcp(addr).expect("worker connect");
                for round in 0..6 {
                    if w % 2 == 0 {
                        // Readers: pipelined detect + repair share the
                        // dataset's read lock.
                        let responses = c
                            .batch(&[
                                Request::Detect {
                                    dataset: "cust".into(),
                                    limit: 5,
                                },
                                Request::Repair {
                                    dataset: "cust".into(),
                                    spec: RepairSpec::default(),
                                    want_edits: false,
                                    want_stats: false,
                                },
                            ])
                            .expect("pipelined batch");
                        let [detect, repair]: [Response; 2] =
                            responses.try_into().expect("two responses");
                        let (text, _) = match detect {
                            Response::Ok { text, blobs } => (text, blobs),
                            Response::Err { kind, message } => {
                                panic!("worker {w} round {round}: {kind:?} {message}")
                            }
                        };
                        assert_eq!(text, detect_expected, "worker {w} round {round} detect");
                        match repair {
                            Response::Ok { blobs, .. } => {
                                assert_eq!(
                                    blobs[0], repair_expected,
                                    "worker {w} round {round} repair"
                                )
                            }
                            Response::Err { kind, message } => {
                                panic!("worker {w} round {round}: {kind:?} {message}")
                            }
                        }
                    } else {
                        // Writers: inserts serialize on `clean`'s write
                        // lock; sealing makes every answer identical.
                        match c
                            .request(&Request::Insert {
                                dataset: "clean".into(),
                                csv: delta.clone(),
                                weights: None,
                                ordering: b'v',
                                k: 2,
                            })
                            .expect("insert request")
                        {
                            Response::Ok { text, blobs } => {
                                assert_eq!(text, insert_expected_text, "worker {w} round {round}");
                                assert_eq!(
                                    blobs, insert_expected_blobs,
                                    "worker {w} round {round} merge bytes"
                                );
                            }
                            Response::Err { kind, message } => {
                                panic!("worker {w} round {round}: {kind:?} {message}")
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker thread");
    }

    // After all the interleaving, the resident state still answers the
    // serial baseline.
    let (text, _) = ok(probe
        .request(&Request::Detect {
            dataset: "cust".into(),
            limit: 5,
        })
        .unwrap());
    assert_eq!(text, detect_expected);
    daemon.stop();
}

#[test]
fn evict_loop_returns_the_pool_to_baseline_every_round() {
    let daemon = start(ServerConfig::default());
    let mut c = daemon.client();
    let mut baseline = None;
    for round in 0..3 {
        ok(c.request(&open_cust_request("cust")).unwrap());
        let (_, blobs) = ok(c
            .request(&Request::Repair {
                dataset: "cust".into(),
                spec: RepairSpec::default(),
                want_edits: false,
                want_stats: false,
            })
            .unwrap());
        assert_eq!(blobs[0], fixture("cust_repaired.csv"));
        let (evict_text, _) = ok(c
            .request(&Request::Evict {
                dataset: "cust".into(),
            })
            .unwrap());
        assert!(
            evict_text.contains("pool 1 value(s)"),
            "round {round}: only null survives eviction, got: {evict_text}"
        );
        match &baseline {
            None => baseline = Some(evict_text),
            Some(b) => assert_eq!(&evict_text, b, "round {round} reclaimed differently"),
        }
        // The name is free again; the next round's open must succeed
        // (asserted by `ok` at the top of the loop).
        let (kind, _) = err(c
            .request(&Request::Detect {
                dataset: "cust".into(),
                limit: 5,
            })
            .unwrap());
        assert_eq!(kind, ErrorKind::UnknownDataset);
    }
    daemon.stop();
}

#[test]
fn lru_capacity_evicts_through_the_wire() {
    let daemon = start(ServerConfig {
        capacity: Some(1),
        ..ServerConfig::default()
    });
    let mut c = daemon.client();
    ok(c.request(&open_cust_request("a")).unwrap());
    let (text, _) = ok(c.request(&open_cust_request("b")).unwrap());
    assert!(
        text.starts_with("opened \"b\": 4 tuple(s)\nevicted \"a\":"),
        "open must report the LRU eviction, got: {text}"
    );
    let (stats, _) = ok(c.request(&Request::Stats).unwrap());
    assert_eq!(
        stats,
        "resident 1 dataset(s): b\ncapacity 1\nauto-evictions 1"
    );
    daemon.stop();
}

#[test]
fn snapshot_save_evict_reload_round_trips_through_the_catalog() {
    let dir = std::env::temp_dir().join(format!("cfd-server-catalog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = start(ServerConfig {
        catalog: Some(PathBuf::from(&dir)),
        ..ServerConfig::default()
    });
    let mut c = daemon.client();
    ok(c.request(&open_cust_request("cust")).unwrap());
    let (save_text, _) = ok(c
        .request(&Request::SnapshotSave {
            dataset: "cust".into(),
            as_name: "gold".into(),
        })
        .unwrap());
    assert!(save_text.starts_with("saved 4 tuple(s) as dataset \"gold\" -> "));
    ok(c.request(&Request::Evict {
        dataset: "cust".into(),
    })
    .unwrap());

    // Reload from the catalog: embedded rules bind automatically and the
    // repair still matches the committed fixture.
    let (text, _) = ok(c
        .request(&Request::OpenSnapshot {
            name: "gold".into(),
            as_name: None,
        })
        .unwrap());
    assert_eq!(text, "opened snapshot \"gold\": 4 tuple(s)");
    let (_, blobs) = ok(c
        .request(&Request::Repair {
            dataset: "gold".into(),
            spec: RepairSpec::default(),
            want_edits: false,
            want_stats: false,
        })
        .unwrap());
    assert_eq!(blobs[0], fixture("cust_repaired.csv"));

    let (info, _) = ok(c
        .request(&Request::SnapshotInfo {
            name: Some("gold".into()),
        })
        .unwrap());
    assert!(info.starts_with("dataset \"gold\"\n"));
    assert!(info.contains("rules      embedded"));
    // Satellite of the zero-copy reader: per-segment byte sizes and
    // checksum status, one line per frame in file order.
    for seg in ["META", "RULES", "DICT", "COLS", "VALIDITY"] {
        assert!(
            info.contains(&format!("segment    {seg:<8}")),
            "info must list the {seg} segment, got:\n{info}"
        );
    }
    assert!(info.contains("checksum ok"));
    assert!(!info.contains("checksum BAD"));
    let (listing, _) = ok(c.request(&Request::SnapshotInfo { name: None }).unwrap());
    assert!(listing.starts_with("gold: 4 live tuple(s)"));

    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_snapshot_opens_share_one_mapping() {
    let dir = std::env::temp_dir().join(format!("cfd-server-mapshare-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = start(ServerConfig {
        catalog: Some(PathBuf::from(&dir)),
        ..ServerConfig::default()
    });
    let mut c = daemon.client();
    ok(c.request(&open_cust_request("cust")).unwrap());
    ok(c.request(&Request::SnapshotSave {
        dataset: "cust".into(),
        as_name: "gold".into(),
    })
    .unwrap());
    ok(c.request(&Request::Evict {
        dataset: "cust".into(),
    })
    .unwrap());

    // Open the same snapshot twice: once under its own name, once under
    // an alias. The session's mapping cache must share one file mapping
    // between them.
    let (text, _) = ok(c
        .request(&Request::OpenSnapshot {
            name: "gold".into(),
            as_name: None,
        })
        .unwrap());
    assert_eq!(text, "opened snapshot \"gold\": 4 tuple(s)");
    let (text, _) = ok(c
        .request(&Request::OpenSnapshot {
            name: "gold".into(),
            as_name: Some("gold2".into()),
        })
        .unwrap());
    assert_eq!(text, "opened snapshot \"gold\" as \"gold2\": 4 tuple(s)");

    let (stats, _) = ok(c.request(&Request::Stats).unwrap());
    assert!(
        stats.contains("\nmappings 1: 2 dataset(s) mapped, "),
        "both datasets must share one mapping, got: {stats}"
    );

    // Both datasets answer identical repairs — and repairing one (a
    // read-only operation over the resident relation) leaves the
    // sibling's borrowed bytes untouched.
    let mut repairs = Vec::new();
    for name in ["gold", "gold2"] {
        let (_, blobs) = ok(c
            .request(&Request::Repair {
                dataset: name.into(),
                spec: RepairSpec::default(),
                want_edits: false,
                want_stats: false,
            })
            .unwrap());
        assert_eq!(blobs[0], fixture("cust_repaired.csv"), "repair of {name}");
        repairs.push(blobs[0].clone());
    }
    assert_eq!(repairs[0], repairs[1]);

    // Evicting one dataset keeps the shared mapping alive for the other.
    ok(c.request(&Request::Evict {
        dataset: "gold".into(),
    })
    .unwrap());
    let (stats, _) = ok(c.request(&Request::Stats).unwrap());
    assert!(
        stats.contains("\nmappings 1: 1 dataset(s) mapped, "),
        "the survivor still holds the mapping, got: {stats}"
    );
    let (_, blobs) = ok(c
        .request(&Request::Repair {
            dataset: "gold2".into(),
            spec: RepairSpec::default(),
            want_edits: false,
            want_stats: false,
        })
        .unwrap());
    assert_eq!(blobs[0], fixture("cust_repaired.csv"));

    // And after the last mapped dataset goes, the stats line disappears
    // (the baseline text is pinned by other tests).
    ok(c.request(&Request::Evict {
        dataset: "gold2".into(),
    })
    .unwrap());
    let (stats, _) = ok(c.request(&Request::Stats).unwrap());
    assert!(
        !stats.contains("mappings"),
        "no mapping line once nothing is mapped, got: {stats}"
    );

    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn requests_without_a_catalog_answer_the_typed_error() {
    let daemon = start(ServerConfig::default());
    let mut c = daemon.client();
    let (kind, message) = err(c.request(&Request::SnapshotInfo { name: None }).unwrap());
    assert_eq!(kind, ErrorKind::NoCatalog);
    assert_eq!(message, "no snapshot catalog is attached to this session");
    daemon.stop();
}

/// Hand-write a frame to a raw socket (bypassing the client's codec) so
/// the server's framing is tested against arbitrary bytes.
fn raw_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
    stream.flush().unwrap();
}

fn raw_response(stream: &mut TcpStream) -> Option<Response> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut len[got..]).unwrap() {
            0 if got == 0 => return None,
            0 => panic!("truncated response frame"),
            n => got += n,
        }
    }
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).unwrap();
    Some(cfd_server::decode_response(&payload).expect("response decodes"))
}

#[test]
fn malformed_oversized_and_disconnecting_peers_never_wedge_the_daemon() {
    let daemon = start(ServerConfig::default());

    // A malformed payload inside an intact frame: typed error, and the
    // connection keeps serving.
    let mut s = TcpStream::connect(daemon.addr).unwrap();
    raw_frame(&mut s, &[0xff]);
    let (kind, message) = err(raw_response(&mut s).expect("error response"));
    assert_eq!(kind, ErrorKind::Protocol);
    assert!(message.contains("unknown opcode 0xff"), "got: {message}");
    raw_frame(&mut s, &cfd_server::encode_request(&Request::Ping));
    let (text, _) = ok(raw_response(&mut s).expect("ping response"));
    assert_eq!(text, "pong");

    // Trailing garbage after a complete request: same contract.
    let mut trailing = cfd_server::encode_request(&Request::List);
    trailing.push(0x00);
    raw_frame(&mut s, &trailing);
    let (kind, _) = err(raw_response(&mut s).expect("error response"));
    assert_eq!(kind, ErrorKind::Protocol);

    // An oversized length prefix: refused before allocation, answered,
    // then the connection closes (the frame boundary is lost).
    let mut s2 = TcpStream::connect(daemon.addr).unwrap();
    s2.write_all(&((DEFAULT_MAX_FRAME as u32) + 1).to_le_bytes())
        .unwrap();
    s2.flush().unwrap();
    let (kind, message) = err(raw_response(&mut s2).expect("oversized reply"));
    assert_eq!(kind, ErrorKind::Protocol);
    assert!(message.contains("oversized frame"), "got: {message}");
    assert!(
        raw_response(&mut s2).is_none(),
        "connection must close after an oversized frame"
    );

    // A mid-frame disconnect: the peer dies with half a frame written.
    let mut s3 = TcpStream::connect(daemon.addr).unwrap();
    s3.write_all(&100u32.to_le_bytes()).unwrap();
    s3.write_all(&[1, 2, 3]).unwrap();
    s3.flush().unwrap();
    drop(s3);

    // The daemon survives all of it.
    let mut c = daemon.client();
    let (text, _) = ok(c.request(&Request::Ping).unwrap());
    assert_eq!(text, "pong");
    daemon.stop();
}

#[test]
fn daemon_streams_equal_in_process_sessions_byte_for_byte() {
    use cfdclean::StreamConfig;

    // Clean base (streams demand one) + the same fixture rules.
    let open_clean = Request::Open {
        name: "live".into(),
        csv: fixture("cust_repaired.csv"),
        rules: Some(rules_text()),
        weights: None,
    };
    // Window 0: one dirty arrival (AC 212 pins NYC/NY) and one clean.
    // Window 1: another dirty arrival plus a delete of the w0 clean one.
    let w0 = "i 1 c7,Quinn,9.99,212,5550001,Fifth,PHI,PA,10012\n\
              i 4 c8,Ray,5.00,212,5550002,Fifth,NYC,NY,10012\n";
    let w1 = "i 12 c9,Sam,7.50,215,5550003,Walnut,NYC,NY,19014\n";

    // The in-process reference run.
    let mut h = DatasetHandle::from_csv("live", &fixture("cust_repaired.csv")).unwrap();
    h.bind_rules(&rules_text(), "rules").unwrap();
    let info = h.open_stream(StreamConfig::tumbling(10)).unwrap();
    let delete_clean = format!("d 13 {}\n", info.next_tuple_id + 1);
    let accepted0 = h.stream_feed(w0).unwrap();
    let local_w0 = h.stream_advance(10).unwrap();
    let accepted1 = h.stream_feed(&format!("{w1}{delete_clean}")).unwrap();
    let (local_flushed, local_report) = h.stream_close().unwrap();
    assert_eq!(local_w0.len(), 1);
    assert_eq!(local_flushed.len(), 1);
    assert!(local_w0[0].edits > 0, "the dirty arrival must be repaired");

    // The same sequence over the wire.
    let daemon = start(ServerConfig::default());
    let mut c = daemon.client();
    ok(c.request(&open_clean).unwrap());
    let (open_text, _) = ok(c
        .request(&Request::StreamOpen {
            dataset: "live".into(),
            size: 10,
            slide: 10,
            ordering: b'v',
            k: 1,
        })
        .unwrap());
    assert_eq!(open_text, info.summary());
    let (feed_text, _) = ok(c
        .request(&Request::StreamFeed {
            dataset: "live".into(),
            events: w0.as_bytes().to_vec(),
        })
        .unwrap());
    assert_eq!(feed_text, format!("accepted {accepted0} event(s)"));
    let (advance_text, advance_blobs) = ok(c
        .request(&Request::StreamAdvance {
            dataset: "live".into(),
            watermark: 10,
        })
        .unwrap());
    assert_eq!(advance_text, local_w0[0].summary());
    assert_eq!(
        advance_blobs,
        vec![local_w0[0].edit_log.clone()],
        "window 0 edit log diverged from the in-process stream"
    );
    let (feed_text, _) = ok(c
        .request(&Request::StreamFeed {
            dataset: "live".into(),
            events: format!("{w1}{delete_clean}").into_bytes(),
        })
        .unwrap());
    assert_eq!(feed_text, format!("accepted {accepted1} event(s)"));
    let (close_text, close_blobs) = ok(c
        .request(&Request::StreamClose {
            dataset: "live".into(),
        })
        .unwrap());
    assert_eq!(
        close_text,
        format!("{}\n{}", local_flushed[0].summary(), local_report.summary())
    );
    assert_eq!(close_blobs, vec![local_flushed[0].edit_log.clone()]);

    // Stream ops on a streamless dataset answer the typed kind.
    let (kind, _) = err(c
        .request(&Request::StreamFeed {
            dataset: "live".into(),
            events: b"i 1 x".to_vec(),
        })
        .unwrap());
    assert_eq!(kind, ErrorKind::Stream);
    // An advance past u8::MAX windows of queued events is impossible to
    // ship; geometry errors are typed too.
    let (kind, _) = err(c
        .request(&Request::StreamOpen {
            dataset: "live".into(),
            size: 5,
            slide: 9,
            ordering: b'v',
            k: 1,
        })
        .unwrap());
    assert_eq!(kind, ErrorKind::Stream);
    daemon.stop();
}

#[test]
fn zero_timeout_answers_typed_timeout_without_wedging_the_connection() {
    let daemon = start(ServerConfig {
        request_timeout: Some(Duration::ZERO),
        ..ServerConfig::default()
    });
    let mut c = daemon.client();
    // The open still happens server-side; its reply races the zero
    // deadline, so only the repair's reply is asserted.
    let _ = c.request(&open_cust_request("cust")).unwrap();
    let (kind, message) = err(c
        .request(&Request::Repair {
            dataset: "cust".into(),
            spec: RepairSpec::default(),
            want_edits: false,
            want_stats: false,
        })
        .unwrap());
    assert_eq!(kind, ErrorKind::Timeout);
    assert!(message.contains("timed out"), "got: {message}");
    // The connection still answers in order — the stale repair result is
    // discarded by sequence number, never delivered as this reply.
    let resp = c.request(&Request::Ping).unwrap();
    match resp {
        Response::Ok { text, .. } => assert_eq!(text, "pong"),
        Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
    }
    daemon.stop();
}
