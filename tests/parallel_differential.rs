//! Serial-vs-sharded differential conformance suite.
//!
//! The sharded repair layer (`cfd_repair::shard`) fans census
//! construction and `PICKNEXT` frontier scoring out across threads; this
//! harness is the proof that thread count can never leak into results.
//! Every trial drives an *identical* workload through the serial
//! reference ([`Parallelism::serial`]) and through explicit 1/2/8-thread
//! configurations, asserting bit-identical outcomes:
//!
//! * `BATCHREPAIR` under **both** pickers (`GlobalBest`,
//!   `DependencyOrdered`) produces identical repairs — values, weights,
//!   liveness — and identical stats (steps, merges, consts, nulls, and
//!   the exact `f64` cost bits);
//! * `INCREPAIR` over a clean base produces identical repairs, delta ids,
//!   and stats.
//!
//! Mirrors `tests/columnar_differential.rs`: seeded trials via
//! `cfd_prng`, failures reproduce exactly from the seed. 300 trials total
//! (200 batch × both pickers + 100 incremental), run under both default
//! and `parallel` feature sets — explicit thread counts spawn real
//! workers either way. The CI thread-count matrix additionally runs the
//! whole suite under `CFD_THREADS=1,2,8`, which flows into every
//! *default*-config repair in the repo (golden fixtures included).

use cfd_prng::{trials, ChaCha8Rng, Rng};

use cfdclean::cfd::pattern::{PatternRow, PatternValue};
use cfdclean::cfd::{Cfd, Sigma};
use cfdclean::model::{AttrId, Relation, Schema, Tuple, TupleId, Value};
use cfdclean::repair::{
    batch_repair, inc_repair, BatchConfig, IncConfig, Parallelism, PickStrategy,
};

const ARITY: usize = 4;
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
/// Speculation depths for the speculative differential matrix: planning
/// windows below, at, and far above typical frontier sizes.
const SPEC_DEPTHS: [usize; 3] = [1, 4, 16];

fn schema() -> Schema {
    Schema::new("par", &["a", "b", "c", "d"]).unwrap()
}

/// A small value universe keeps collision (and thus violation) rates high.
fn rand_value(rng: &mut ChaCha8Rng) -> Value {
    if rng.gen_range(0..6u32) == 0 {
        Value::Null
    } else {
        Value::str(format!("p{}", rng.gen_range(0..6u32)))
    }
}

fn rand_tuple(rng: &mut ChaCha8Rng) -> Tuple {
    let values: Vec<Value> = (0..ARITY).map(|_| rand_value(rng)).collect();
    let weights: Vec<f64> = (0..ARITY)
        .map(|_| (rng.gen_range(0..=10u32) as f64) / 10.0)
        .collect();
    Tuple::with_weights(values, weights)
}

/// Random Σ mixing a wildcard FD row with constant rows, like the paper's
/// tableaus. Multi-attribute LHS lists are included so the shard
/// partitioner sees compound keys.
fn rand_sigma(rng: &mut ChaCha8Rng, schema: &Schema) -> Sigma {
    let n = rng.gen_range(1..=3usize);
    let mut cfds = Vec::new();
    for i in 0..n {
        let l = rng.gen_range(0..ARITY);
        let mut r = rng.gen_range(0..ARITY);
        if l == r {
            r = (r + 1) % ARITY;
        }
        let wide = rng.gen_bool(0.3);
        let lhs: Vec<AttrId> = if wide {
            let l2 = (l + 1 + usize::from(r == (l + 1) % ARITY)) % ARITY;
            let mut v = vec![AttrId(l as u16), AttrId(l2 as u16)];
            v.sort();
            v.dedup();
            v.retain(|a| a.index() != r);
            if v.is_empty() {
                vec![AttrId(l as u16)]
            } else {
                v
            }
        } else {
            vec![AttrId(l as u16)]
        };
        let pat = |rng: &mut ChaCha8Rng| {
            if rng.gen_bool(0.5) {
                PatternValue::Const(Value::str(format!("p{}", rng.gen_range(0..4u32))))
            } else {
                PatternValue::Wildcard
            }
        };
        let row = PatternRow::new(lhs.iter().map(|_| pat(rng)).collect(), vec![pat(rng)]);
        cfds.push(Cfd::new(&format!("phi{i}"), lhs, vec![AttrId(r as u16)], vec![row]).unwrap());
    }
    Sigma::normalize(schema.clone(), cfds).unwrap()
}

fn rand_relation(rng: &mut ChaCha8Rng) -> Relation {
    let mut rel = Relation::new(schema());
    for _ in 0..rng.gen_range(2..14usize) {
        rel.insert(rand_tuple(rng)).unwrap();
    }
    // A few tombstones so the shard walks see a non-dense id space.
    for _ in 0..rng.gen_range(0..3usize) {
        let id = TupleId(rng.gen_range(0..rel.slot_count() as u32));
        let _ = rel.delete(id);
    }
    rel
}

/// Bit-level equality of two relations: same id space, same liveness,
/// same value ids, same weight bits.
fn assert_same_contents(reference: &Relation, got: &Relation, ctx: &str) {
    assert_eq!(reference.len(), got.len(), "{ctx}: live count");
    assert_eq!(reference.slot_count(), got.slot_count(), "{ctx}: slots");
    for slot in 0..reference.slot_count() {
        let id = TupleId(slot as u32);
        match (reference.tuple(id), got.tuple(id)) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                for i in 0..ARITY {
                    let attr = AttrId(i as u16);
                    assert_eq!(a.id(attr), b.id(attr), "{ctx}: {id} attr {i} value");
                    assert_eq!(
                        a.weight(attr).to_bits(),
                        b.weight(attr).to_bits(),
                        "{ctx}: {id} attr {i} weight"
                    );
                }
            }
            (a, b) => panic!("{ctx}: liveness of {id} diverged ({a:?} vs {b:?})"),
        }
    }
}

/// 200 trials × both pickers: sharded `BATCHREPAIR` at 1/2/8 threads must
/// be byte-identical to the serial reference (repairs *and* stats,
/// including the exact cost bits).
#[test]
fn differential_batch_both_pickers() {
    trials(200, 0x5AA5_D1FF, |rng| {
        let rel = rand_relation(rng);
        let sigma = rand_sigma(rng, &schema());
        for pick in [PickStrategy::GlobalBest, PickStrategy::DependencyOrdered] {
            let reference = batch_repair(
                &rel,
                &sigma,
                BatchConfig {
                    pick,
                    parallelism: Parallelism::serial(),
                    ..Default::default()
                },
            )
            .unwrap();
            for threads in THREAD_COUNTS {
                let sharded = batch_repair(
                    &rel,
                    &sigma,
                    BatchConfig {
                        pick,
                        parallelism: Parallelism::threads(threads),
                        ..Default::default()
                    },
                )
                .unwrap();
                let ctx = format!("batch {pick:?} threads={threads}");
                assert_same_contents(&reference.repair, &sharded.repair, &ctx);
                assert_eq!(reference.stats, sharded.stats, "{ctx}: stats");
                assert_eq!(
                    reference.stats.cost.to_bits(),
                    sharded.stats.cost.to_bits(),
                    "{ctx}: cost bits"
                );
            }
        }
    });
}

/// Run one (relation, Σ) workload through the serial reference and the
/// full speculative (threads × k) matrix, asserting byte-identical
/// repairs and stats (exact cost bits included). `BatchStats` must not
/// vary; only the `speculation` schedule counters may.
fn assert_speculative_matrix(rel: &Relation, sigma: &Sigma, label: &str) {
    let reference = batch_repair(
        rel,
        sigma,
        BatchConfig {
            parallelism: Parallelism::serial(),
            speculate: 0,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        reference.speculation.is_none(),
        "serial run must not speculate"
    );
    for threads in THREAD_COUNTS {
        for k in SPEC_DEPTHS {
            let spec = batch_repair(
                rel,
                sigma,
                BatchConfig {
                    parallelism: Parallelism::threads(threads),
                    speculate: k,
                    ..Default::default()
                },
            )
            .unwrap();
            let ctx = format!("{label} threads={threads} k={k}");
            assert_same_contents(&reference.repair, &spec.repair, &ctx);
            assert_eq!(reference.stats, spec.stats, "{ctx}: stats");
            assert_eq!(
                reference.stats.cost.to_bits(),
                spec.stats.cost.to_bits(),
                "{ctx}: cost bits"
            );
            let sched = spec.speculation.expect("speculative run reports stats");
            // Aborted or moot plans consumed a produced plan; every
            // commit / requeue / clean-drop came from a validated hit.
            assert!(
                sched.aborts + sched.moot <= sched.planned,
                "{ctx}: more discarded plans than produced ({sched:?})"
            );
            assert!(
                sched.commits + sched.clean_drops + sched.requeues <= sched.hits,
                "{ctx}: hit outcomes exceed hits ({sched:?})"
            );
        }
    }
}

/// 200 trials: speculative `BATCHREPAIR` over the full (threads × k)
/// matrix must be byte-identical to the sequential reference on the
/// standard randomized workloads.
#[test]
fn differential_speculative_batch() {
    trials(200, 0x5BEC_D1FF, |rng| {
        let rel = rand_relation(rng);
        let sigma = rand_sigma(rng, &schema());
        assert_speculative_matrix(&rel, &sigma, "spec");
    });
}

/// 100 trials on conflict-heavy workloads: a tiny key universe packs many
/// tuples into each LHS group and many groups into each shard, so
/// concurrent plans constantly read census groups and classes that
/// earlier commits mutate — the high-abort-pressure regime where the
/// validation logic earns its keep. Weights vary per cell so merge
/// winners and FINDV prices are non-trivial.
#[test]
fn differential_speculative_conflict_heavy() {
    trials(100, 0x0C0F_11C7, |rng| {
        let mut rel = Relation::new(schema());
        let rows = rng.gen_range(8..28usize);
        for _ in 0..rows {
            // Two group keys and three RHS values: nearly every tuple
            // conflicts with half its group.
            let key = format!("k{}", rng.gen_range(0..2u32));
            let vals = vec![
                Value::str(key),
                Value::str(format!("v{}", rng.gen_range(0..3u32))),
                Value::str(format!("w{}", rng.gen_range(0..3u32))),
                Value::str(format!("z{}", rng.gen_range(0..4u32))),
            ];
            let weights = (0..ARITY)
                .map(|_| (rng.gen_range(1..=10u32) as f64) / 10.0)
                .collect();
            rel.insert(Tuple::with_weights(vals, weights)).unwrap();
        }
        // An FD a→b (variable, always firing) plus a constant rule layer
        // on d→c so constant and variable resolutions interleave.
        let fd = Cfd::standard_fd("fd", vec![AttrId(0)], vec![AttrId(1)]);
        let cons = Cfd::new(
            "cons",
            vec![AttrId(3)],
            vec![AttrId(2)],
            vec![PatternRow::new(
                vec![PatternValue::constant("z0")],
                vec![PatternValue::constant("w0")],
            )],
        )
        .unwrap();
        let sigma = Sigma::normalize(schema(), vec![fd, cons]).unwrap();
        assert_speculative_matrix(&rel, &sigma, "conflict");
    });
}

/// 100 trials: `INCREPAIR` against a clean base must be byte-identical at
/// every thread count (the parallel V-ordering scan and sharded index
/// builds must not reorder resolutions).
#[test]
fn differential_increpair() {
    trials(100, 0x14C_D1FF, |rng| {
        let rel = rand_relation(rng);
        let sigma = rand_sigma(rng, &schema());
        // Clean base: repair it first (serial; batch parity is pinned above).
        let base = batch_repair(&rel, &sigma, BatchConfig::default())
            .unwrap()
            .repair;
        let delta: Vec<Tuple> = (0..rng.gen_range(1..5usize))
            .map(|_| rand_tuple(rng))
            .collect();
        let reference = inc_repair(
            &base,
            &delta,
            &sigma,
            IncConfig {
                parallelism: Parallelism::serial(),
                ..Default::default()
            },
        )
        .unwrap();
        for threads in THREAD_COUNTS {
            let sharded = inc_repair(
                &base,
                &delta,
                &sigma,
                IncConfig {
                    parallelism: Parallelism::threads(threads),
                    ..Default::default()
                },
            )
            .unwrap();
            let ctx = format!("inc threads={threads}");
            assert_same_contents(&reference.repair, &sharded.repair, &ctx);
            assert_eq!(reference.delta_ids, sharded.delta_ids, "{ctx}: delta ids");
            assert_eq!(reference.stats, sharded.stats, "{ctx}: stats");
        }
    });
}
