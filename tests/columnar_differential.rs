//! Row-vs-column differential conformance suite.
//!
//! The columnar pivot swaps the storage layer under the entire repair
//! pipeline; this harness is the proof that nothing above it can tell.
//! Every trial drives an *identical* workload against a row-major and a
//! columnar relation and asserts bit-identical results at each stage:
//!
//! * storage operations — insert, delete, `set_value`, `set_value_id`,
//!   `set_weights`, `compact` — leave identical contents (values,
//!   weights, liveness, id mapping);
//! * `detect` produces identical [`ViolationReport`]s (per-tuple counts,
//!   per-CFD dirty lists, totals);
//! * `BATCHREPAIR` (both pickers) produces identical repairs and stats;
//! * `INCREPAIR` over a clean base produces identical repairs, delta ids,
//!   and stats;
//! * discovery mines identical dependency sets.
//!
//! Seeded trials via `cfd_prng`; failures reproduce exactly from the
//! seed. ≥ 100 trials run through the full pipeline (the acceptance bar),
//! plus another 100 through the storage-op fuzzer.

use cfd_prng::{trials, ChaCha8Rng, Rng, SeedableRng};

use cfdclean::cfd::pattern::{PatternRow, PatternValue};
use cfdclean::cfd::violation::{detect, ViolationReport};
use cfdclean::cfd::{Cfd, Sigma};
use cfdclean::discovery::{discover, DiscoveryConfig};
use cfdclean::model::{AttrId, Relation, Schema, StorageLayout, Tuple, TupleId, Value};
use cfdclean::repair::{batch_repair, inc_repair, BatchConfig, IncConfig, PickStrategy};

const ARITY: usize = 4;

fn schema() -> Schema {
    Schema::new("diff", &["a", "b", "c", "d"]).unwrap()
}

/// A small value universe keeps collision (and thus violation) rates high.
fn rand_value(rng: &mut ChaCha8Rng) -> Value {
    if rng.gen_range(0..6u32) == 0 {
        Value::Null
    } else {
        Value::str(format!("v{}", rng.gen_range(0..6u32)))
    }
}

fn rand_tuple(rng: &mut ChaCha8Rng) -> Tuple {
    let values: Vec<Value> = (0..ARITY).map(|_| rand_value(rng)).collect();
    let weights: Vec<f64> = (0..ARITY)
        .map(|_| (rng.gen_range(0..=10u32) as f64) / 10.0)
        .collect();
    Tuple::with_weights(values, weights)
}

/// Random Σ mixing a wildcard FD row with constant rows, like the paper's
/// tableaus.
fn rand_sigma(rng: &mut ChaCha8Rng, schema: &Schema) -> Sigma {
    let n = rng.gen_range(1..=3usize);
    let mut cfds = Vec::new();
    for i in 0..n {
        let l = rng.gen_range(0..ARITY);
        let mut r = rng.gen_range(0..ARITY);
        if l == r {
            r = (r + 1) % ARITY;
        }
        let pat = |rng: &mut ChaCha8Rng| {
            if rng.gen_bool(0.5) {
                PatternValue::Const(Value::str(format!("v{}", rng.gen_range(0..4u32))))
            } else {
                PatternValue::Wildcard
            }
        };
        let row = PatternRow::new(vec![pat(rng)], vec![pat(rng)]);
        cfds.push(
            Cfd::new(
                &format!("phi{i}"),
                vec![AttrId(l as u16)],
                vec![AttrId(r as u16)],
                vec![row],
            )
            .unwrap(),
        );
    }
    Sigma::normalize(schema.clone(), cfds).unwrap()
}

/// Both layouts loaded with identical tuples through the normal insert
/// path.
fn twin_relations(rows: &[Tuple]) -> (Relation, Relation) {
    let mut row = Relation::with_layout(schema(), StorageLayout::RowMajor);
    let mut col = Relation::with_layout(schema(), StorageLayout::Columnar);
    for t in rows {
        let a = row.insert(t.clone()).unwrap();
        let b = col.insert(t.clone()).unwrap();
        assert_eq!(a, b, "insert must assign identical ids");
    }
    (row, col)
}

/// Byte-level equality of two relations: same id space, same liveness,
/// same ids, same weights.
fn assert_same_contents(row: &Relation, col: &Relation, ctx: &str) {
    assert_eq!(row.len(), col.len(), "{ctx}: live count");
    assert_eq!(row.slot_count(), col.slot_count(), "{ctx}: slot count");
    for slot in 0..row.slot_count() {
        let id = TupleId(slot as u32);
        match (row.tuple(id), col.tuple(id)) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                for i in 0..ARITY {
                    let attr = AttrId(i as u16);
                    assert_eq!(a.id(attr), b.id(attr), "{ctx}: {id} attr {i} value");
                    assert_eq!(
                        a.weight(attr).to_bits(),
                        b.weight(attr).to_bits(),
                        "{ctx}: {id} attr {i} weight"
                    );
                }
            }
            (a, b) => panic!("{ctx}: liveness of {id} diverged ({a:?} vs {b:?})"),
        }
    }
}

fn assert_same_report(a: &ViolationReport, b: &ViolationReport, ctx: &str) {
    assert_eq!(a.total, b.total, "{ctx}: total");
    assert_eq!(a.per_tuple, b.per_tuple, "{ctx}: per-tuple counts");
    assert_eq!(a.per_cfd, b.per_cfd, "{ctx}: per-CFD dirty lists");
}

/// Storage-op fuzzer: a random op sequence applied to both layouts must
/// be observationally identical after every operation.
#[test]
fn differential_storage_operations() {
    trials(100, 0xC01D1FF, |rng| {
        let rows: Vec<Tuple> = (0..rng.gen_range(1..12usize))
            .map(|_| rand_tuple(rng))
            .collect();
        let (mut row, mut col) = twin_relations(&rows);
        for _ in 0..rng.gen_range(1..24usize) {
            match rng.gen_range(0..6u32) {
                0 => {
                    let t = rand_tuple(rng);
                    let a = row.insert(t.clone()).unwrap();
                    let b = col.insert(t).unwrap();
                    assert_eq!(a, b);
                }
                1 => {
                    let id = TupleId(rng.gen_range(0..row.slot_count().max(1) as u32 + 1));
                    let a = row.delete(id);
                    let b = col.delete(id);
                    assert_eq!(a.is_ok(), b.is_ok(), "delete({id}) outcome");
                    if let (Ok(x), Ok(y)) = (a, b) {
                        assert_eq!(x, y, "deleted tuple contents");
                    }
                }
                2 => {
                    let id = TupleId(rng.gen_range(0..row.slot_count().max(1) as u32 + 1));
                    let attr = AttrId(rng.gen_range(0..ARITY as u32) as u16);
                    let v = rand_value(rng);
                    let a = row.set_value(id, attr, v.clone());
                    let b = col.set_value(id, attr, v);
                    assert_eq!(a.is_ok(), b.is_ok(), "set_value({id}) outcome");
                }
                3 => {
                    let id = TupleId(rng.gen_range(0..row.slot_count().max(1) as u32 + 1));
                    let ws: Vec<f64> = (0..ARITY)
                        .map(|_| (rng.gen_range(0..=10u32) as f64) / 10.0)
                        .collect();
                    let a = row.set_weights(id, &ws);
                    let b = col.set_weights(id, &ws);
                    assert_eq!(a.is_ok(), b.is_ok(), "set_weights({id}) outcome");
                }
                4 => {
                    let a = row.compact();
                    let b = col.compact();
                    assert_eq!(a, b, "compact mapping");
                }
                _ => {
                    // point reads across the whole id space
                    for slot in 0..row.slot_count() + 1 {
                        let id = TupleId(slot as u32);
                        let attr = AttrId(rng.gen_range(0..ARITY as u32) as u16);
                        assert_eq!(row.value_id(id, attr), col.value_id(id, attr));
                        assert_eq!(row.cell_weight(id, attr), col.cell_weight(id, attr));
                    }
                }
            }
            assert_same_contents(&row, &col, "after op");
        }
    });
}

/// Full pipeline: detection, both BATCHREPAIR pickers, INCREPAIR, and
/// discovery must be layout-blind. 100 seeded trials.
#[test]
fn differential_full_pipeline() {
    trials(100, 0xD1FFC01, |rng| {
        let rows: Vec<Tuple> = (0..rng.gen_range(2..14usize))
            .map(|_| rand_tuple(rng))
            .collect();
        let sigma = rand_sigma(rng, &schema());
        let (mut row, mut col) = twin_relations(&rows);
        // A few tombstones so detection sees a non-dense id space.
        for _ in 0..rng.gen_range(0..3usize) {
            let id = TupleId(rng.gen_range(0..row.slot_count() as u32));
            let _ = row.delete(id);
            let _ = col.delete(id);
        }
        assert_same_contents(&row, &col, "input");

        // Stage 1: detection.
        let report_row = detect(&row, &sigma);
        let report_col = detect(&col, &sigma);
        assert_same_report(&report_row, &report_col, "detect");

        // Stage 2: BATCHREPAIR, alternating picker per trial.
        let pick = if rng.gen_bool(0.5) {
            PickStrategy::GlobalBest
        } else {
            PickStrategy::DependencyOrdered
        };
        let config = BatchConfig {
            pick,
            ..Default::default()
        };
        let out_row = batch_repair(&row, &sigma, config.clone()).unwrap();
        let out_col = batch_repair(&col, &sigma, config).unwrap();
        assert_same_contents(&out_row.repair, &out_col.repair, "batch repair");
        assert_eq!(out_row.stats, out_col.stats, "batch stats");

        // Stage 3: INCREPAIR against the (clean, identical) repairs.
        let delta: Vec<Tuple> = (0..rng.gen_range(1..4usize))
            .map(|_| rand_tuple(rng))
            .collect();
        let inc_row = inc_repair(&out_row.repair, &delta, &sigma, IncConfig::default()).unwrap();
        let inc_col = inc_repair(&out_col.repair, &delta, &sigma, IncConfig::default()).unwrap();
        assert_same_contents(&inc_row.repair, &inc_col.repair, "inc repair");
        assert_eq!(inc_row.delta_ids, inc_col.delta_ids, "delta ids");
        assert_eq!(inc_row.stats, inc_col.stats, "inc stats");

        // Stage 4: discovery over the dirty inputs.
        let mined_row = discover(&row, &DiscoveryConfig::default());
        let mined_col = discover(&col, &DiscoveryConfig::default());
        assert_eq!(
            format!("{mined_row:?}"),
            format!("{mined_col:?}"),
            "mined dependencies"
        );
    });
}

/// Degenerate shapes must not panic on either layout: an arity-0 schema
/// (regression: the columnar constant scan once probed column 0 before
/// checking arity) and an empty relation.
#[test]
fn degenerate_relations_survive_the_pipeline() {
    let empty_schema = Schema::new("empty", &[] as &[&str]).unwrap();
    for layout in [StorageLayout::Columnar, StorageLayout::RowMajor] {
        let rel = Relation::with_layout(empty_schema.clone(), layout);
        let sigma = Sigma::normalize(empty_schema.clone(), vec![]).unwrap();
        assert!(detect(&rel, &sigma).is_clean());
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert_eq!(out.repair.len(), 0);
        // arity-4 but zero tuples
        let rel = Relation::with_layout(schema(), layout);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sigma = rand_sigma(&mut rng, &schema());
        assert!(detect(&rel, &sigma).is_clean());
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert_eq!(out.repair.len(), 0);
    }
}

/// CSV import (columnar bulk-intern) must agree with a row-by-row rebuild
/// of the same file, and export must be layout-independent.
#[test]
fn differential_csv_round_trip() {
    use cfdclean::model::csv::{read_relation, write_relation};
    trials(100, 0xC57D1FF, |rng| {
        let rows: Vec<Tuple> = (0..rng.gen_range(1..10usize))
            .map(|_| rand_tuple(rng))
            .collect();
        let (row, col) = twin_relations(&rows);
        let mut out_row = Vec::new();
        let mut out_col = Vec::new();
        write_relation(&row, &mut out_row).unwrap();
        write_relation(&col, &mut out_col).unwrap();
        assert_eq!(out_row, out_col, "CSV bytes must not depend on layout");
        let back = read_relation("diff", &mut out_col.as_slice()).unwrap();
        assert_eq!(back.layout(), StorageLayout::Columnar);
        assert_eq!(back.len(), col.len());
        for (id, t) in col.iter() {
            let b = back.tuple(id).unwrap();
            for i in 0..ARITY {
                let attr = AttrId(i as u16);
                assert_eq!(t.id(attr), b.id(attr), "{id} attr {i} after round trip");
            }
        }
    });
}
