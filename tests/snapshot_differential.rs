//! Snapshot / edit-log differential conformance suite.
//!
//! The persistence layer swaps the ingest path under the repair
//! pipeline; this harness is the proof that nothing above it can tell.
//! 300 seeded trials, two families:
//!
//! * **Round-trip + repair identity** (150 trials): a random weighted,
//!   tombstoned relation is snapshotted and re-loaded; the loaded
//!   relation must be cell-, weight-, and liveness-identical, re-saving
//!   it must reproduce the snapshot byte for byte (canonical encoding),
//!   and `BATCHREPAIR` (both pickers) must produce bit-identical repairs
//!   and cost bits on the original and the loaded copy. The repair's
//!   [`EditLog`] is then serialized, parsed back, and replayed onto the
//!   loaded copy — which must land exactly on the repair.
//! * **CSV vs snapshot ingest** (150 trials): the same dirty data is
//!   ingested once through CSV (per-cell interning) and once through
//!   snapshot save → load (dictionary install + remap); repairs of the
//!   two — batch and the §5.3 incremental bridge — must be
//!   bit-identical, including cost bits.
//!
//! Seeded trials via `cfd_prng`; failures reproduce exactly from the
//! seed.

use cfd_prng::{trials, ChaCha8Rng, Rng};

use cfdclean::cfd::pattern::{PatternRow, PatternValue};
use cfdclean::cfd::{Cfd, Sigma};
use cfdclean::model::csv::{read_relation_in, write_relation};
use cfdclean::model::snapshot::{
    edit_log_to_vec, read_edit_log_in, read_snapshot, read_snapshot_mapped, snapshot_to_vec,
};
use cfdclean::model::ValuePool;
use cfdclean::model::{AttrId, Mapping, MappingCache, Relation, Schema, Tuple, TupleId, Value};
use cfdclean::repair::{
    batch_repair, repair_via_incremental, BatchConfig, IncConfig, PickStrategy,
};

const ARITY: usize = 4;

fn schema() -> Schema {
    Schema::new("diff", &["a", "b", "c", "d"]).unwrap()
}

/// A small value universe keeps collision (and thus violation) rates high.
fn rand_value(rng: &mut ChaCha8Rng) -> Value {
    if rng.gen_range(0..6u32) == 0 {
        Value::Null
    } else {
        Value::str(format!("v{}", rng.gen_range(0..6u32)))
    }
}

fn rand_tuple(rng: &mut ChaCha8Rng, weights: bool) -> Tuple {
    let values: Vec<Value> = (0..ARITY).map(|_| rand_value(rng)).collect();
    if weights {
        let w: Vec<f64> = (0..ARITY)
            .map(|_| (rng.gen_range(0..=10u32) as f64) / 10.0)
            .collect();
        Tuple::with_weights(values, w)
    } else {
        Tuple::new(values)
    }
}

/// Random CFDs mixing a wildcard FD row with constant rows, like the
/// paper's tableaus. Returned un-normalized so each relation under test
/// can normalize them into its *own* pool (snapshot loads get a fresh
/// pool per load).
fn rand_cfds(rng: &mut ChaCha8Rng) -> Vec<Cfd> {
    let n = rng.gen_range(1..=3usize);
    let mut cfds = Vec::new();
    for i in 0..n {
        let l = rng.gen_range(0..ARITY);
        let mut r = rng.gen_range(0..ARITY);
        if l == r {
            r = (r + 1) % ARITY;
        }
        let pat = |rng: &mut ChaCha8Rng| {
            if rng.gen_bool(0.5) {
                PatternValue::Const(Value::str(format!("v{}", rng.gen_range(0..4u32))))
            } else {
                PatternValue::Wildcard
            }
        };
        let row = PatternRow::new(vec![pat(rng)], vec![pat(rng)]);
        cfds.push(
            Cfd::new(
                &format!("phi{i}"),
                vec![AttrId(l as u16)],
                vec![AttrId(r as u16)],
                vec![row],
            )
            .unwrap(),
        );
    }
    cfds
}

/// Normalize `cfds` against `rel`'s schema into `rel`'s pool.
fn sigma_for(rel: &Relation, cfds: &[Cfd]) -> Sigma {
    Sigma::normalize_in(rel.schema().clone(), cfds.to_vec(), rel.pool()).unwrap()
}

/// Bit-level equality of two relations through the public API: same id
/// space, same liveness, same cell ids, same weight bits.
fn assert_same_contents(a: &Relation, b: &Relation, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: live count");
    assert_eq!(a.slot_count(), b.slot_count(), "{ctx}: slot count");
    for slot in 0..a.slot_count() {
        let id = TupleId(slot as u32);
        match (a.tuple(id), b.tuple(id)) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                for i in 0..ARITY {
                    let attr = AttrId(i as u16);
                    assert_eq!(x.value(attr), y.value(attr), "{ctx}: {id} attr {i} value");
                    assert_eq!(
                        x.weight(attr).to_bits(),
                        y.weight(attr).to_bits(),
                        "{ctx}: {id} attr {i} weight"
                    );
                }
            }
            (x, y) => panic!("{ctx}: liveness of {id} diverged ({x:?} vs {y:?})"),
        }
    }
}

fn rand_pick(rng: &mut ChaCha8Rng) -> PickStrategy {
    if rng.gen_bool(0.5) {
        PickStrategy::GlobalBest
    } else {
        PickStrategy::DependencyOrdered
    }
}

#[test]
fn differential_snapshot_round_trip_and_repair() {
    trials(150, 0x5AA9_D1FF, |rng| {
        let mut rel = Relation::new(schema());
        for _ in 0..rng.gen_range(2..14usize) {
            rel.insert(rand_tuple(rng, true)).unwrap();
        }
        // A few tombstones so the persisted id space is non-dense.
        for _ in 0..rng.gen_range(0..3usize) {
            let id = TupleId(rng.gen_range(0..rel.slot_count() as u32));
            let _ = rel.delete(id);
        }
        // Move off the process-shared pool (whose frequency counters
        // accumulate across trials) onto a dataset-scoped one, matching
        // what any ingest path produces.
        let rel = rel.rekey_into(&ValuePool::new_handle());
        let cfds = rand_cfds(rng);

        // Round trip, including canonical re-encoding.
        let bytes = snapshot_to_vec(&rel, Some("embedded rule text"));
        let loaded = read_snapshot(&bytes).expect("valid snapshot loads");
        assert_eq!(loaded.rules.as_deref(), Some("embedded rule text"));
        assert_same_contents(&rel, &loaded.relation, "round trip");
        assert_eq!(
            bytes,
            snapshot_to_vec(&loaded.relation, Some("embedded rule text")),
            "re-saving the loaded relation must be byte-identical"
        );

        // The loaded relation lives in its own pool, so each side
        // normalizes Σ into its own dictionary: repairs must still be
        // bit-identical, stats and cost bits included.
        let config = BatchConfig {
            pick: rand_pick(rng),
            ..Default::default()
        };
        let out_a = batch_repair(&rel, &sigma_for(&rel, &cfds), config.clone()).unwrap();
        let out_b = batch_repair(
            &loaded.relation,
            &sigma_for(&loaded.relation, &cfds),
            config,
        )
        .unwrap();
        assert_same_contents(&out_a.repair, &out_b.repair, "batch repair");
        assert_eq!(out_a.stats, out_b.stats, "batch stats");
        assert_eq!(
            out_a.stats.cost.to_bits(),
            out_b.stats.cost.to_bits(),
            "cost bits"
        );

        // The repair as a persisted edit log: snapshot + log replays to
        // the byte-exact repair.
        let log = out_a.edit_log(&rel).expect("repair preserves ids");
        let log_bytes = edit_log_to_vec(&log, rel.schema().name(), ARITY, rel.pool());
        // Round trip through the pool the log was derived in: identical
        // ids; then re-read into the snapshot's pool to replay there.
        let parsed = read_edit_log_in(&log_bytes, rel.pool()).expect("valid log parses");
        assert_eq!(parsed.log, log, "edit log round trip");
        let mut replayed = loaded.relation.clone();
        let parsed_b =
            read_edit_log_in(&log_bytes, replayed.pool()).expect("valid log parses again");
        parsed_b.log.apply(&mut replayed).expect("log replays");
        assert_same_contents(&out_a.repair, &replayed, "snapshot + edit log");
    });
}

#[test]
fn differential_csv_vs_snapshot_ingest() {
    trials(150, 0xC5F_5AA9, |rng| {
        // Build the dirty data, render it to CSV text — the common
        // ancestor of both ingest paths. (CSV carries no weights or
        // tombstones, so this family exercises the unweighted path.)
        let mut built = Relation::new(schema());
        for _ in 0..rng.gen_range(2..14usize) {
            built.insert(rand_tuple(rng, false)).unwrap();
        }
        let cfds = rand_cfds(rng);
        let mut csv = Vec::new();
        write_relation(&built, &mut csv).unwrap();

        // Path A: CSV load (per-cell interning, fresh pool per load).
        let via_csv =
            read_relation_in("diff", &mut csv.as_slice(), ValuePool::new_handle()).unwrap();
        // Path B: snapshot save → load (dictionary install + remap,
        // into a pool of its own).
        let via_snap = read_snapshot(&snapshot_to_vec(&via_csv, None))
            .expect("valid snapshot loads")
            .relation;
        assert_same_contents(&via_csv, &via_snap, "ingest");
        let sigma_csv = sigma_for(&via_csv, &cfds);
        let sigma_snap = sigma_for(&via_snap, &cfds);

        let config = BatchConfig {
            pick: rand_pick(rng),
            ..Default::default()
        };
        let out_csv = batch_repair(&via_csv, &sigma_csv, config.clone()).unwrap();
        let out_snap = batch_repair(&via_snap, &sigma_snap, config).unwrap();
        assert_same_contents(&out_csv.repair, &out_snap.repair, "batch repair");
        assert_eq!(out_csv.stats, out_snap.stats, "batch stats");
        assert_eq!(
            out_csv.stats.cost.to_bits(),
            out_snap.stats.cost.to_bits(),
            "cost bits"
        );

        // The §5.3 incremental bridge must be ingest-blind too.
        let inc_csv = repair_via_incremental(&via_csv, &sigma_csv, IncConfig::default()).unwrap();
        let inc_snap =
            repair_via_incremental(&via_snap, &sigma_snap, IncConfig::default()).unwrap();
        assert_same_contents(&inc_csv.repair, &inc_snap.repair, "incremental repair");
        assert_eq!(inc_csv.reinserted, inc_snap.reinserted, "reinserted ids");
        assert_eq!(inc_csv.stats, inc_snap.stats, "incremental stats");

        // And the incremental repair's edit log replays on the snapshot
        // side as well.
        let log = inc_csv.edit_log(&via_csv).expect("§5.3 preserves ids");
        let log_bytes = edit_log_to_vec(&log, "diff", ARITY, via_csv.pool());
        let mut replayed = via_snap.clone();
        let parsed = read_edit_log_in(&log_bytes, replayed.pool()).expect("valid log parses");
        parsed.log.apply(&mut replayed).expect("log replays");
        assert_same_contents(&inc_csv.repair, &replayed, "snapshot + inc edit log");
    });
}

/// The zero-copy reader is indistinguishable from the eager one: 300
/// seeded trials where the same snapshot bytes are opened through both
/// paths. The mapped relation must be cell-, weight-, and
/// liveness-identical, produce bit-identical repairs (stats and cost
/// bits included, at whatever `CFD_THREADS`/`CFD_SPECULATE`/`CFD_SIMD`
/// corner the suite runs under), re-save byte-identically, and honor
/// copy-on-write: a cell write to one mapped dataset must not leak into
/// a sibling opened over the very same mapping.
#[test]
fn differential_mapped_vs_eager_open() {
    trials(300, 0x3A99_ED0F, |rng| {
        let mut rel = Relation::new(schema());
        for _ in 0..rng.gen_range(2..14usize) {
            let weighted = rng.gen_bool(0.5);
            rel.insert(rand_tuple(rng, weighted)).unwrap();
        }
        for _ in 0..rng.gen_range(0..3usize) {
            let id = TupleId(rng.gen_range(0..rel.slot_count() as u32));
            let _ = rel.delete(id);
        }
        let rel = rel.rekey_into(&ValuePool::new_handle());
        let cfds = rand_cfds(rng);
        let bytes = snapshot_to_vec(&rel, None);

        let eager = read_snapshot(&bytes).expect("eager load").relation;
        let map = Mapping::from_bytes(bytes.clone());
        let mapped = read_snapshot_mapped(&map).expect("mapped load").relation;
        assert_same_contents(&eager, &mapped, "mapped vs eager contents");

        // Re-saving the mapped relation must reproduce the input bytes —
        // the canonical-encoding proof, through borrowed columns.
        assert_eq!(
            bytes,
            snapshot_to_vec(&mapped, None),
            "re-saving the mapped relation must be byte-identical"
        );

        // Bit-identical repairs across the two ingest paths.
        let config = BatchConfig {
            pick: rand_pick(rng),
            ..Default::default()
        };
        let out_eager = batch_repair(&eager, &sigma_for(&eager, &cfds), config.clone()).unwrap();
        let out_mapped = batch_repair(&mapped, &sigma_for(&mapped, &cfds), config).unwrap();
        assert_same_contents(&out_eager.repair, &out_mapped.repair, "mapped batch repair");
        assert_eq!(out_eager.stats, out_mapped.stats, "mapped batch stats");
        assert_eq!(
            out_eager.stats.cost.to_bits(),
            out_mapped.stats.cost.to_bits(),
            "mapped cost bits"
        );

        // Copy-on-write isolation: two datasets over ONE mapping; a cell
        // write to the first must leave the second (and a fresh third
        // open of the same mapping) untouched.
        let mut first = read_snapshot_mapped(&map).expect("mapped load").relation;
        let second = read_snapshot_mapped(&map).expect("mapped load").relation;
        let first_id = first.ids().next();
        if let Some(id) = first_id {
            let attr = AttrId(rng.gen_range(0..ARITY as u64) as u16);
            first.set_value(id, attr, Value::str("COW")).unwrap();
            assert_eq!(
                first.tuple(id).unwrap().value(attr),
                Value::str("COW"),
                "write must land in the writer"
            );
            assert_same_contents(&second, &mapped, "sibling after COW write");
            let third = read_snapshot_mapped(&map).expect("mapped load").relation;
            assert_same_contents(&third, &mapped, "fresh open after COW write");
        }
    });
}

/// File-backed mapped opens through the [`MappingCache`]: two opens of
/// the same snapshot file share one mapping (`Arc::ptr_eq`), both read
/// identically to the eager path, and a COW write to one dataset leaves
/// the other — borrowing the very same file bytes — unchanged.
#[test]
fn mapped_open_shares_one_file_mapping() {
    let mut rel = Relation::new(schema());
    for i in 0..10 {
        rel.insert(Tuple::new(vec![
            Value::str(format!("k{i}")),
            Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            Value::int(i),
            Value::Null,
        ]))
        .unwrap();
    }
    let rel = rel.rekey_into(&ValuePool::new_handle());
    let bytes = snapshot_to_vec(&rel, Some("phi: [a] -> [b]"));
    let dir = std::env::temp_dir();
    let path = dir.join(format!("cfd-diff-snap-{}.cfds", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();

    let cache = MappingCache::new();
    let m1 = cache.get_or_open(&path).unwrap();
    let m2 = cache.get_or_open(&path).unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&m1, &m2),
        "cache must hand out one shared mapping per file"
    );

    let eager = read_snapshot(&bytes).unwrap().relation;
    let mut a = read_snapshot_mapped(&m1).unwrap().relation;
    let b = read_snapshot_mapped(&m2).unwrap().relation;
    assert_same_contents(&eager, &a, "file-mapped a");
    assert_same_contents(&eager, &b, "file-mapped b");

    a.set_value(TupleId(0), AttrId(1), Value::str("MUT"))
        .unwrap();
    assert_same_contents(&eager, &b, "b unchanged after a's COW write");
    assert_eq!(
        a.tuple(TupleId(0)).unwrap().value(AttrId(1)),
        Value::str("MUT")
    );

    // The mutated dataset re-saves to different bytes; the untouched one
    // re-saves byte-identically straight off the mapping.
    assert_eq!(bytes, snapshot_to_vec(&b, Some("phi: [a] -> [b]")));
    assert_ne!(bytes, snapshot_to_vec(&a, Some("phi: [a] -> [b]")));

    drop(a);
    drop(b);
    drop((m1, m2));
    let _ = std::fs::remove_file(&path);
}

/// Degenerate shapes survive persistence: empty relations, all-null
/// rows, arity-0 schemas, and relations that are pure tombstones.
#[test]
fn degenerate_snapshots_round_trip() {
    // empty, arity 4
    let empty = Relation::new(schema());
    let loaded = read_snapshot(&snapshot_to_vec(&empty, None)).unwrap();
    assert_same_contents(&empty, &loaded.relation, "empty");

    // arity 0 — empty, and with empty-tuple inserts + a tombstone (an
    // arity-0 relation still carries slots; the snapshot must round-trip
    // them through the explicit slot count, not infer 0 from no columns)
    let zero = Relation::new(Schema::new("zero", &[] as &[&str]).unwrap());
    let loaded = read_snapshot(&snapshot_to_vec(&zero, None)).unwrap();
    assert_eq!(loaded.relation.schema().arity(), 0);
    assert_eq!(loaded.relation.len(), 0);
    let mut zero_rows = Relation::new(Schema::new("zero", &[] as &[&str]).unwrap());
    zero_rows.insert(Tuple::new(vec![])).unwrap();
    zero_rows.insert(Tuple::new(vec![])).unwrap();
    zero_rows.delete(TupleId(0)).unwrap();
    let loaded = read_snapshot(&snapshot_to_vec(&zero_rows, None)).unwrap();
    assert_eq!(loaded.relation.slot_count(), 2);
    assert_eq!(loaded.relation.len(), 1);
    assert!(!loaded.relation.is_live(TupleId(0)));
    assert!(loaded.relation.is_live(TupleId(1)));

    // all-null rows + full tombstoning
    let mut nulls = Relation::new(schema());
    for _ in 0..3 {
        nulls.insert(Tuple::new(vec![Value::Null; ARITY])).unwrap();
    }
    nulls.delete(TupleId(0)).unwrap();
    nulls.delete(TupleId(1)).unwrap();
    nulls.delete(TupleId(2)).unwrap();
    let loaded = read_snapshot(&snapshot_to_vec(&nulls, None)).unwrap();
    assert_same_contents(&nulls, &loaded.relation, "all-null tombstoned");
    assert_eq!(loaded.relation.slot_count(), 3);
    assert_eq!(loaded.relation.len(), 0);
}
