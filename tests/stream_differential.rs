//! Differential suite for the windowed streaming repair sessions.
//!
//! The contracts pinned here:
//!
//! * **Replay reconstruction** — replaying every window's events
//!   (original values) onto the initial snapshot and applying that
//!   window's `.cfde` edit log reconstructs the stream's final relation
//!   exactly, cell for cell.
//! * **One-shot equivalence** — a single window covering every event
//!   produces byte-identical edit-log bytes to a one-shot `inc_repair`
//!   of the same batch; a multi-window stream (no deletes) equals the
//!   sequence of one-shot repairs on the evolved bases. One-shot repairs
//!   are already pinned byte-identical across the `CFD_THREADS` ×
//!   `CFD_SPECULATE` × `CFD_SIMD` matrix, so running this suite under
//!   the CI determinism matrix extends that guarantee to streams by
//!   transitivity.
//! * **Sliding ≡ tumbling at S = W**, and window-commit arithmetic.
//! * **Pool hygiene** — closing a stream returns the dictionary's slot
//!   count to its pre-stream value, every round; evicting a dataset
//!   with a stream still open reaches the same empty-pool baseline as a
//!   streamless eviction.

use cfdclean::model::diff::EditLog;
use cfdclean::model::snapshot::read_edit_log_in;
use cfdclean::model::{csv, Relation, TupleId};
use cfdclean::repair::{inc_repair, IncConfig, Ordering, Parallelism};
use cfdclean::{Session, SessionError, StreamConfig, WindowResult};

const CSV_DATA: &str = "AC,PN,CT,ST,zip\n\
                        212,5556611,NYC,NY,10012\n\
                        215,8883425,PHI,PA,19014\n";
const RULES: &str = "phi: [zip] -> [CT, ST] { (10012 || NYC, NY); (19014 || PHI, PA) }";

/// Rows whose zip pins CT/ST: some clean, some needing repair.
const R_CLEAN_NYC: &str = "212,7770001,NYC,NY,10012";
const R_DIRTY_NYC: &str = "212,7770002,PHX,AZ,10012"; // must become NYC,NY
const R_CLEAN_PHI: &str = "610,7770003,PHI,PA,19014";
const R_DIRTY_PHI: &str = "610,7770004,NYC,NY,19014"; // must become PHI,PA

fn open(session: &Session, name: &str) -> cfdclean::DatasetRef {
    session
        .open_csv(name, CSV_DATA.as_bytes(), Some(RULES), None)
        .expect("open")
        .entry
}

fn feed_line(kind: char, ts: u64, body: &str) -> String {
    format!("{kind} {ts} {body}\n")
}

/// Insert `rows` into `rel` (values re-parsed through the same pool) in
/// order, returning the assigned ids — the replay side of staging.
fn replay_insert(rel: &mut Relation, rows: &[&str]) -> Vec<TupleId> {
    let mut text = String::new();
    let mut header = Vec::new();
    csv::write_relation(&Relation::new(rel.schema().clone()), &mut header).unwrap();
    text.push_str(std::str::from_utf8(&header).unwrap());
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    let batch = csv::read_relation_in("replay", &mut text.as_bytes(), rel.pool().clone()).unwrap();
    batch
        .iter()
        .map(|(_, t)| rel.insert(t.to_tuple()).unwrap())
        .collect()
}

fn assert_same_cells(a: &Relation, b: &Relation, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: live counts differ");
    let attrs: Vec<_> = a.schema().attr_ids().collect();
    for (id, ta) in a.iter() {
        let tb = b
            .require(id)
            .unwrap_or_else(|_| panic!("{what}: {id} missing"));
        for att in &attrs {
            assert_eq!(
                ta.value(*att),
                tb.value(*att),
                "{what}: cell ({id}, {att:?}) differs"
            );
        }
    }
}

/// The one-shot reference for one window: `inc_repair` the rows against
/// `base`, returning (evolved base, serialized edit-log bytes).
fn oneshot_window(
    base: &Relation,
    rows: &[&str],
    sigma: &cfdclean::cfd::Sigma,
) -> (Relation, Vec<u8>) {
    let mut staged = base.clone();
    let ids = replay_insert(&mut staged, rows);
    let delta: Vec<_> = ids
        .iter()
        .map(|id| staged.require(*id).unwrap().to_tuple())
        .collect();
    let cfg = IncConfig {
        k: 1,
        ordering: Ordering::Violations,
        parallelism: Parallelism::default(),
        ..IncConfig::default()
    };
    let out = inc_repair(base, &delta, sigma, cfg).expect("one-shot repair");
    assert_eq!(out.delta_ids, ids, "staging must assign the same ids");
    let log = EditLog::between(&staged, &out.repair).expect("same liveness");
    let bytes = cfdclean::model::snapshot::edit_log_to_vec(
        &log,
        base.schema().name(),
        base.schema().arity(),
        base.pool(),
    );
    (out.repair, bytes)
}

#[test]
fn replaying_window_logs_reconstructs_the_final_relation() {
    let session = Session::new();
    let entry = open(&session, "orders");
    let mut cell = entry.write().unwrap();
    let handle = cell.handle_mut().unwrap();
    handle.open_stream(StreamConfig::tumbling(10)).unwrap();

    // Window 0: two inserts (one dirty) and a cancelled insert.
    // Window 1: a dirty insert plus a delete of a window-0 arrival.
    // Window 2: a delete of a base tuple and a clean insert.
    let w0 = [R_CLEAN_NYC, R_DIRTY_NYC, R_CLEAN_PHI];
    let base_bound = handle.stream_info().unwrap().next_tuple_id;
    let mut events = String::new();
    events.push_str(&feed_line('i', 1, w0[0]));
    events.push_str(&feed_line('i', 3, w0[1]));
    events.push_str(&feed_line('i', 5, w0[2]));
    events.push_str(&feed_line('d', 7, &(base_bound + 2).to_string())); // cancels R_CLEAN_PHI
    events.push_str(&feed_line('i', 12, R_DIRTY_PHI));
    events.push_str(&feed_line('d', 14, &base_bound.to_string())); // deletes R_CLEAN_NYC
    events.push_str(&feed_line('d', 21, "0")); // deletes a base tuple
    events.push_str(&feed_line('i', 23, R_CLEAN_PHI));
    assert_eq!(handle.stream_feed(&events).unwrap(), 8);

    let mut results: Vec<WindowResult> = Vec::new();
    results.extend(handle.stream_advance(10).unwrap());
    assert_eq!(results.len(), 1, "only window 0 closes at watermark 10");
    results.extend(handle.stream_advance(40).unwrap());
    assert_eq!(results.len(), 3);

    // Replay: initial snapshot + per-window (inserts, deletes, log).
    let resident = handle.relation().clone();
    let mut replica = resident.clone();
    let window_rows: [&[&str]; 3] = [&w0, &[R_DIRTY_PHI], &[R_CLEAN_PHI]];
    for (r, rows) in results.iter().zip(window_rows) {
        let staged = replay_insert(&mut replica, rows);
        // Cancelled inserts are the staged ids the result does not list.
        for id in &staged {
            if !r.inserted.contains(id) {
                replica.delete(*id).unwrap();
            }
        }
        for id in &r.deleted {
            replica.delete(*id).unwrap();
        }
        let loaded = read_edit_log_in(&r.edit_log, replica.pool()).expect("parse .cfde");
        assert_eq!(loaded.relation, replica.schema().name());
        loaded.log.apply(&mut replica).expect("log applies cleanly");
    }
    assert_same_cells(handle.stream().unwrap().relation(), &replica, "replay");

    // The dirty arrivals were actually repaired.
    let report = results
        .iter()
        .map(|r| r.summary())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        results[0].stats.modified >= 1,
        "window 0 repaired the PHX row:\n{report}"
    );
    assert!(
        results[1].stats.modified >= 1,
        "window 1 repaired the NYC row:\n{report}"
    );
    assert_eq!(results[0].cancelled, 1);
    assert_eq!(results[1].deleted, vec![TupleId(base_bound)]);
    assert_eq!(results[2].deleted, vec![TupleId(0)]);

    // The resident relation never moved.
    assert_eq!(
        resident.len(),
        2,
        "one-shot state is untouched by the stream"
    );
}

#[test]
fn single_window_stream_equals_one_shot_inc_repair_byte_for_byte() {
    let session = Session::new();
    let entry = open(&session, "orders");
    let mut cell = entry.write().unwrap();
    let handle = cell.handle_mut().unwrap();

    let rows = [R_DIRTY_NYC, R_CLEAN_NYC, R_DIRTY_PHI];
    let (_, expected) = {
        let sigma = handle.sigma().unwrap().clone();
        oneshot_window(&handle.relation().clone(), &rows, &sigma)
    };

    handle.open_stream(StreamConfig::tumbling(100)).unwrap();
    let mut events = String::new();
    for (i, r) in rows.iter().enumerate() {
        events.push_str(&feed_line('i', i as u64, r));
    }
    handle.stream_feed(&events).unwrap();
    let results = handle.stream_advance(100).unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].edit_log, expected,
        "single-window stream log != one-shot inc_repair log"
    );
    assert!(results[0].edits > 0, "the dirty rows force edits");
}

#[test]
fn multi_window_stream_equals_one_shot_sequence_on_evolved_bases() {
    let session = Session::new();
    let entry = open(&session, "orders");
    let mut cell = entry.write().unwrap();
    let handle = cell.handle_mut().unwrap();

    let windows: [&[&str]; 3] = [
        &[R_DIRTY_NYC, R_CLEAN_PHI],
        &[R_CLEAN_NYC],
        &[R_DIRTY_PHI, "212,7770005,BOS,MA,10012"],
    ];
    let sigma = handle.sigma().unwrap().clone();
    let mut evolved = handle.relation().clone();
    let mut expected_logs = Vec::new();
    for rows in windows {
        let (next, bytes) = oneshot_window(&evolved, rows, &sigma);
        expected_logs.push(bytes);
        evolved = next;
    }

    handle.open_stream(StreamConfig::tumbling(10)).unwrap();
    for (k, rows) in windows.iter().enumerate() {
        let mut events = String::new();
        for r in *rows {
            events.push_str(&feed_line('i', k as u64 * 10 + 1, r));
        }
        handle.stream_feed(&events).unwrap();
    }
    let results = handle.stream_advance(30).unwrap();
    assert_eq!(results.len(), 3);
    for (r, expected) in results.iter().zip(&expected_logs) {
        assert_eq!(
            &r.edit_log, expected,
            "window {} log != one-shot on evolved base",
            r.window
        );
    }
    assert_same_cells(
        handle.stream().unwrap().relation(),
        &evolved,
        "evolved base",
    );
}

#[test]
fn sliding_with_slide_equal_size_is_tumbling() {
    let run = |config: StreamConfig| {
        let session = Session::new();
        let entry = open(&session, "orders");
        let mut cell = entry.write().unwrap();
        let handle = cell.handle_mut().unwrap();
        handle.open_stream(config).unwrap();
        let mut events = String::new();
        for (i, r) in [R_DIRTY_NYC, R_CLEAN_PHI, R_DIRTY_PHI].iter().enumerate() {
            events.push_str(&feed_line('i', i as u64 * 7, r));
        }
        handle.stream_feed(&events).unwrap();
        let results = handle.stream_advance(60).unwrap();
        results
            .into_iter()
            .map(|r| (r.window, r.start, r.summary(), r.edit_log))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(StreamConfig::tumbling(10)),
        run(StreamConfig::sliding(10, 10))
    );
}

#[test]
fn sliding_windows_commit_events_at_first_close() {
    let session = Session::new();
    let entry = open(&session, "orders");
    let mut cell = entry.write().unwrap();
    let handle = cell.handle_mut().unwrap();
    // W = 10, S = 2: ts 13 is covered by windows 2..=6, commits in
    // window (13-10)/2+1 = 2, which closes at watermark 14.
    handle.open_stream(StreamConfig::sliding(10, 2)).unwrap();
    handle
        .stream_feed(&feed_line('i', 13, R_CLEAN_NYC))
        .unwrap();
    assert!(handle.stream_advance(13).unwrap().is_empty());
    let results = handle.stream_advance(14).unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].window, 2);
    assert_eq!(results[0].start, 4);
    // A later event into a closed window is late — typed error.
    let err = handle
        .stream_feed(&feed_line('i', 2, R_CLEAN_PHI))
        .unwrap_err();
    assert!(matches!(err, SessionError::Stream(_)), "late event: {err}");
    // But the same timestamp fed as part of a *pre-close* batch was fine
    // (window 0 closed at watermark 10 ≤ 14).
}

#[test]
fn closing_a_stream_returns_the_pool_to_its_pre_stream_footprint() {
    let session = Session::new();
    let entry = open(&session, "orders");
    let mut cell = entry.write().unwrap();
    let handle = cell.handle_mut().unwrap();
    let baseline = handle.relation().pool().len();

    let mut close_reports = Vec::new();
    for round in 0..3u64 {
        handle.open_stream(StreamConfig::tumbling(10)).unwrap();
        let mut events = String::new();
        events.push_str(&feed_line('i', 1, R_DIRTY_NYC));
        events.push_str(&feed_line('i', 2, R_CLEAN_PHI));
        events.push_str(&feed_line('i', 12, R_DIRTY_PHI));
        handle.stream_feed(&events).unwrap();
        handle.stream_advance(20).unwrap();
        // One window still queued — close() must flush it.
        handle
            .stream_feed(&feed_line('i', 25, R_CLEAN_NYC))
            .unwrap();
        let (flushed, report) = handle.stream_close().unwrap();
        assert_eq!(
            flushed.len(),
            1,
            "round {round}: close flushes the queued window"
        );
        assert_eq!(
            handle.relation().pool().len(),
            baseline,
            "round {round}: stream slots must seal back to baseline"
        );
        close_reports.push(report.summary());
        // The stream is gone; its API answers typed errors.
        assert!(matches!(
            handle.stream_feed("i 1 x"),
            Err(SessionError::Stream(_))
        ));
    }
    assert_eq!(
        close_reports[0], close_reports[1],
        "reclamation is deterministic"
    );
    assert_eq!(close_reports[1], close_reports[2]);
}

#[test]
fn evicting_a_dataset_with_an_open_stream_reclaims_the_pool() {
    let session = Session::new();
    let entry = open(&session, "orders");
    {
        let mut cell = entry.write().unwrap();
        let handle = cell.handle_mut().unwrap();
        handle.open_stream(StreamConfig::tumbling(10)).unwrap();
        let mut events = String::new();
        events.push_str(&feed_line('i', 1, R_DIRTY_NYC));
        events.push_str(&feed_line('i', 12, R_DIRTY_PHI));
        handle.stream_feed(&events).unwrap();
        // Close window 0 so the stream holds live repaired arrivals
        // (pinned values, fixed-up counts) *and* a queued window.
        handle.stream_advance(10).unwrap();
    }
    let report = session.evict("orders").unwrap();
    assert_eq!(
        report.pool_len,
        1,
        "only null survives: {}",
        report.summary()
    );
}

#[test]
fn stream_rejects_bad_geometry_bad_rows_and_double_opens() {
    let session = Session::new();
    let entry = open(&session, "orders");
    let mut cell = entry.write().unwrap();
    let handle = cell.handle_mut().unwrap();

    for (size, slide) in [(0, 0), (10, 0), (10, 11)] {
        let err = handle
            .open_stream(StreamConfig::sliding(size, slide))
            .unwrap_err();
        assert!(matches!(err, SessionError::Stream(_)), "{size}/{slide}");
    }
    handle.open_stream(StreamConfig::tumbling(10)).unwrap();
    assert!(matches!(
        handle.open_stream(StreamConfig::tumbling(10)),
        Err(SessionError::Stream(_))
    ));
    // Rules cannot be rebound under an open stream.
    assert!(matches!(
        handle.bind_rules(RULES, "rules"),
        Err(SessionError::Stream(_))
    ));

    // A malformed row rejects the whole feed batch atomically.
    let mut events = feed_line('i', 1, R_CLEAN_NYC);
    events.push_str(&feed_line('i', 2, "only,three,fields"));
    assert!(matches!(
        handle.stream_feed(&events),
        Err(SessionError::Stream(_))
    ));
    // Nothing was queued: closing everything emits no window.
    let (flushed, report) = handle.stream_close().unwrap();
    assert!(flushed.is_empty());
    assert_eq!(report.windows, 0);

    // Deleting a dead tuple is a typed error, not a panic.
    handle.open_stream(StreamConfig::tumbling(10)).unwrap();
    handle.stream_feed(&feed_line('d', 1, "99")).unwrap();
    assert!(matches!(
        handle.stream_advance(10),
        Err(SessionError::Stream(_))
    ));
    // The failed window is discarded; the stream keeps going.
    handle
        .stream_feed(&feed_line('i', 15, R_CLEAN_NYC))
        .unwrap();
    assert_eq!(handle.stream_advance(30).unwrap().len(), 1);
}
