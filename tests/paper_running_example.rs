//! The paper's running example, end to end: the Fig. 1 `order` data and
//! CFDs ϕ1–ϕ4, tuple `t5` of Example 1.1, the ϕ1/ϕ2 oscillation of
//! Example 4.1, and Example 5.1's k-sensitivity.

use cfdclean::cfd::parser::parse_rules;
use cfdclean::cfd::satisfiability::satisfiable;
use cfdclean::cfd::violation::{check, detect};
use cfdclean::cfd::Sigma;
use cfdclean::model::{Relation, Schema, Tuple, TupleId, Value};
use cfdclean::repair::{batch_repair, inc_repair, BatchConfig, IncConfig};

const RULES: &str = "
# Fig. 1(b) and Fig. 2 of the paper
phi1: [AC, PN] -> [STR, CT, ST] {
  (212, _ || _, NYC, NY);
  (610, _ || _, PHI, PA);
  (215, _ || _, PHI, PA)
}
phi2: [zip] -> [CT, ST] {
  (10012 || NYC, NY);
  (19014 || PHI, PA)
}
phi3: [id] -> [name, PR]
phi4: [CT, STR] -> [zip]
";

fn schema() -> Schema {
    Schema::new(
        "order",
        &["id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip"],
    )
    .unwrap()
}

fn sigma() -> Sigma {
    let s = schema();
    let cfds = parse_rules(&s, RULES).expect("paper rules parse");
    Sigma::normalize(s, cfds).expect("paper rules normalize")
}

/// Fig. 1(a) with the wt rows as weights.
fn fig1_data() -> Relation {
    let mut rel = Relation::new(schema());
    let rows: [(&[&str; 9], &[f64; 9]); 4] = [
        (
            &[
                "a23",
                "H. Porter",
                "17.99",
                "215",
                "8983490",
                "Walnut",
                "PHI",
                "PA",
                "19014",
            ],
            &[1.0, 0.5, 0.5, 0.5, 0.5, 0.8, 0.8, 0.8, 0.8],
        ),
        (
            &[
                "a23",
                "H. Porter",
                "17.99",
                "610",
                "3456789",
                "Spruce",
                "PHI",
                "PA",
                "19014",
            ],
            &[1.0, 0.5, 0.5, 0.5, 0.5, 0.6, 0.6, 0.6, 0.6],
        ),
        (
            &[
                "a12",
                "J. Denver",
                "7.94",
                "212",
                "3345677",
                "Canel",
                "PHI",
                "PA",
                "10012",
            ],
            &[1.0, 0.9, 0.9, 0.9, 0.9, 0.6, 0.1, 0.1, 0.8],
        ),
        (
            &[
                "a89",
                "Snow White",
                "18.99",
                "212",
                "5674322",
                "Broad",
                "PHI",
                "PA",
                "10012",
            ],
            &[1.0, 0.6, 0.5, 0.9, 0.9, 0.1, 0.6, 0.6, 0.9],
        ),
    ];
    for (values, weights) in rows {
        let values = values.iter().map(|s| Value::str(*s)).collect();
        rel.insert(Tuple::with_weights(values, weights.to_vec()))
            .unwrap();
    }
    rel
}

#[test]
fn paper_sigma_is_satisfiable() {
    assert!(satisfiable(&sigma()).is_satisfiable());
}

#[test]
fn fig1_satisfies_the_fds_but_not_the_cfds() {
    let rel = fig1_data();
    let sigma = sigma();
    // The embedded FDs hold on Fig. 1(a) ("Although the database of
    // Fig. 1(a) satisfies these FDs…").
    let fds = sigma.embedded_fds().unwrap();
    assert!(check(&rel, &fds));
    // …but the CFDs are violated by t3 and t4.
    let report = detect(&rel, &sigma);
    assert_eq!(report.dirty_tuples(), vec![TupleId(2), TupleId(3)]);
}

#[test]
fn batch_repair_produces_the_intended_fig1_repair() {
    let rel = fig1_data();
    let sigma = sigma();
    let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
    assert!(check(&out.repair, &sigma));
    // t3's low-confidence CT/ST (w = 0.1) are corrected to NYC/NY as in
    // Example 1.1 / 3.1.
    let s = schema();
    let t3 = out.repair.tuple(TupleId(2)).unwrap();
    assert_eq!(t3.value(s.attr("CT").unwrap()), Value::str("NYC"));
    assert_eq!(t3.value(s.attr("ST").unwrap()), Value::str("NY"));
}

#[test]
fn example_1_1_t5_incremental_insert() {
    // Start from the repaired (clean) Fig. 1 database.
    let rel = fig1_data();
    let sigma = sigma();
    let clean = batch_repair(&rel, &sigma, BatchConfig::default())
        .unwrap()
        .repair;
    assert!(check(&clean, &sigma));
    // Insert t5 = (215, 8983490, …, NYC, NY, 10012): violates fd1 with t1
    // and sits in the ϕ1/ϕ2 cycle of Example 1.1.
    let t5 = Tuple::from_iter([
        "a55", "New Item", "9.99", "215", "8983490", "Walnut", "NYC", "NY", "10012",
    ]);
    for k in [1, 2, 3] {
        let out = inc_repair(
            &clean,
            std::slice::from_ref(&t5),
            &sigma,
            IncConfig {
                k,
                max_combos: 4096,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(check(&out.repair, &sigma), "k = {k} must yield a repair");
        // the clean base is never modified
        for (id, t) in clean.iter() {
            assert_eq!(out.repair.tuple(id).unwrap(), t);
        }
    }
}

#[test]
fn example_4_1_oscillation_terminates_in_batch() {
    // The naive FD-style RHS-only strategy would flip t5[CT,ST] between
    // (PHI, PA) and (NYC, NY) forever; BATCHREPAIR's monotone targets
    // guarantee termination (Theorem 4.2).
    let rel = fig1_data();
    let sigma = sigma();
    let mut with_t5 = batch_repair(&rel, &sigma, BatchConfig::default())
        .unwrap()
        .repair;
    with_t5
        .insert(Tuple::from_iter([
            "a55", "New Item", "9.99", "215", "8983490", "Walnut", "NYC", "NY", "10012",
        ]))
        .unwrap();
    let out = batch_repair(&with_t5, &sigma, BatchConfig::default()).unwrap();
    assert!(check(&out.repair, &sigma));
}

#[test]
fn example_5_1_certain_fix_needs_k3() {
    // With the cascade search enabled, k = 3 can rebind (CT, ST, zip) to
    // (PHI, PA, 19014) — Example 5.1's certain fix — while k = 2 over the
    // same attributes must fall back to nulls.
    let rel = fig1_data();
    let sigma = sigma();
    let clean = batch_repair(&rel, &sigma, BatchConfig::default())
        .unwrap()
        .repair;
    let s = schema();
    let mut t5 = Tuple::from_iter([
        "a55", "New Item", "9.99", "215", "8983490", "Walnut", "NYC", "NY", "10012",
    ]);
    // make the conflicted triple cheap, everything else precious
    for name in ["CT", "ST", "zip"] {
        t5.set_weight(s.attr(name).unwrap(), 0.05);
    }
    let cfg = IncConfig {
        k: 3,
        max_combos: 4096,
        restrict_to_failing: false,
        ..Default::default()
    };
    let out = inc_repair(&clean, &[t5], &sigma, cfg).unwrap();
    assert!(check(&out.repair, &sigma));
    let got = out.repair.tuple(out.delta_ids[0]).unwrap();
    assert_eq!(got.value(s.attr("CT").unwrap()), Value::str("PHI"));
    assert_eq!(got.value(s.attr("ST").unwrap()), Value::str("PA"));
    assert_eq!(got.value(s.attr("zip").unwrap()), Value::str("19014"));
    assert_eq!(out.stats.nulls_introduced, 0);
}

#[test]
fn deletions_never_need_repair() {
    // §3.3: "For any deletions ΔD, the tuples can be simply removed from D
    // without causing any CFD violation."
    let rel = fig1_data();
    let sigma = sigma();
    let mut clean = batch_repair(&rel, &sigma, BatchConfig::default())
        .unwrap()
        .repair;
    clean.delete(TupleId(0)).unwrap();
    clean.delete(TupleId(3)).unwrap();
    assert!(check(&clean, &sigma));
}
