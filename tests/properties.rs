//! Randomized property tests over the core invariants:
//!
//! * both repair algorithms always terminate with `Repr |= Σ` on random
//!   relations and random CFD sets (the Theorem 4.2 / 5.3 guarantees);
//! * the DL distance is a metric (identity, symmetry, triangle
//!   inequality) and the normalized form stays in `[0, 1]`;
//! * equivalence-class progress is monotone and bounded;
//! * incremental insertion of consistent tuples is a no-op;
//! * CSV round-trips arbitrary values.
//!
//! Seeded trials via `cfd_prng`; failures reproduce exactly from the seed.

use cfd_prng::{trials, ChaCha8Rng, Rng};

use cfdclean::cfd::pattern::{PatternRow, PatternValue};
use cfdclean::cfd::violation::check;
use cfdclean::cfd::{Cfd, Sigma};
use cfdclean::model::{csv, AttrId, Relation, Schema, Tuple, Value, ValueId};
use cfdclean::repair::distance::{dl_distance, normalized_distance};
use cfdclean::repair::equivalence::{Cell, EqClasses, Target};
use cfdclean::repair::{batch_repair, inc_repair, BatchConfig, IncConfig};

const ARITY: usize = 4;

/// A small value universe keeps collision (and thus violation) rates high.
fn rand_value(rng: &mut ChaCha8Rng) -> Value {
    if rng.gen_range(0..5u32) == 0 {
        Value::Null
    } else {
        Value::str(format!("v{}", rng.gen_range(0..6u32)))
    }
}

fn rand_tuple(rng: &mut ChaCha8Rng) -> Vec<Value> {
    (0..ARITY).map(|_| rand_value(rng)).collect()
}

fn rand_rows(rng: &mut ChaCha8Rng) -> Vec<Vec<Value>> {
    (0..rng.gen_range(1..14usize))
        .map(|_| rand_tuple(rng))
        .collect()
}

/// Random single-attribute normal-form CFDs over the fixed 4-attribute
/// schema. LHS and RHS attrs are distinct; patterns draw from the same
/// value universe.
fn rand_sigma(rng: &mut ChaCha8Rng, schema: &Schema, max: usize) -> Sigma {
    let n = rng.gen_range(1..=max);
    let mut cfds = Vec::new();
    for i in 0..n {
        let l = rng.gen_range(0..ARITY);
        let mut r = rng.gen_range(0..ARITY);
        if l == r {
            r = (r + 1) % ARITY;
        }
        let pat = |rng: &mut ChaCha8Rng| {
            if rng.gen_bool(0.5) {
                PatternValue::Const(Value::str(format!("v{}", rng.gen_range(0..4u32))))
            } else {
                PatternValue::Wildcard
            }
        };
        let lhs_pat = pat(rng);
        let rhs_pat = pat(rng);
        cfds.push(
            Cfd::new(
                &format!("c{i}"),
                vec![AttrId(l as u16)],
                vec![AttrId(r as u16)],
                vec![PatternRow::new(vec![lhs_pat], vec![rhs_pat])],
            )
            .unwrap(),
        );
    }
    Sigma::normalize(schema.clone(), cfds).unwrap()
}

fn build_relation(schema: &Schema, rows: Vec<Vec<Value>>) -> Relation {
    let mut rel = Relation::new(schema.clone());
    for row in rows {
        rel.insert(Tuple::new(row)).unwrap();
    }
    rel
}

#[test]
fn batch_repair_always_satisfies_sigma() {
    trials(64, 0xBA7C4, |rng| {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = rand_sigma(rng, &schema, 4);
        let rel = build_relation(&schema, rand_rows(rng));
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert!(check(&out.repair, &sigma));
        // ids and cardinality preserved: repairs are value modifications
        assert_eq!(out.repair.len(), rel.len());
    });
}

#[test]
fn incremental_repair_always_satisfies_sigma() {
    trials(64, 0x14C2E, |rng| {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = rand_sigma(rng, &schema, 4);
        let rel = build_relation(&schema, rand_rows(rng));
        // start from a guaranteed-clean base
        let clean = batch_repair(&rel, &sigma, BatchConfig::default())
            .unwrap()
            .repair;
        let delta: Vec<Tuple> = (0..rng.gen_range(1..5usize))
            .map(|_| Tuple::new(rand_tuple(rng)))
            .collect();
        let out = inc_repair(&clean, &delta, &sigma, IncConfig::default()).unwrap();
        assert!(check(&out.repair, &sigma));
        // the clean base is untouched
        for (id, t) in clean.iter() {
            assert_eq!(out.repair.tuple(id).unwrap(), t);
        }
    });
}

#[test]
fn batch_repair_is_idempotent() {
    trials(64, 0x1DE4, |rng| {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = rand_sigma(rng, &schema, 4);
        let rel = build_relation(&schema, rand_rows(rng));
        let first = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        let second = batch_repair(&first.repair, &sigma, BatchConfig::default()).unwrap();
        assert_eq!(second.stats.steps, 0, "repairing a repair must be a no-op");
        assert_eq!(second.stats.cost, 0.0);
        for (id, t) in first.repair.iter() {
            assert_eq!(second.repair.tuple(id).unwrap(), t);
        }
    });
}

#[test]
fn inserting_consistent_tuples_changes_nothing() {
    trials(64, 0xC0215, |rng| {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = rand_sigma(rng, &schema, 3);
        let rel = build_relation(&schema, rand_rows(rng));
        let clean = batch_repair(&rel, &sigma, BatchConfig::default())
            .unwrap()
            .repair;
        // re-inserting an existing clean tuple must be a no-op repair
        let existing: Vec<Tuple> = clean.iter().take(2).map(|(_, t)| t.to_tuple()).collect();
        let out = inc_repair(&clean, &existing, &sigma, IncConfig::default()).unwrap();
        assert_eq!(out.stats.modified, 0);
        assert_eq!(out.stats.cost, 0.0);
    });
}

fn rand_word(rng: &mut ChaCha8Rng, alphabet: u32, max: usize) -> String {
    let n = rng.gen_range(0..=max);
    (0..n)
        .map(|_| (b'a' + rng.gen_range(0..alphabet) as u8) as char)
        .collect()
}

#[test]
fn dl_distance_is_a_metric() {
    trials(256, 0xD15A, |rng| {
        let a = rand_word(rng, 3, 6);
        let b = rand_word(rng, 3, 6);
        let c = rand_word(rng, 3, 6);
        let dab = dl_distance(&a, &b);
        let dba = dl_distance(&b, &a);
        assert_eq!(dab, dba);
        assert_eq!(dab == 0, a == b);
        // triangle inequality (OSA satisfies it over this alphabet size)
        let dac = dl_distance(&a, &c);
        let dcb = dl_distance(&c, &b);
        assert!(
            dab <= dac + dcb,
            "d({a},{b})={dab} > d({a},{c})+d({c},{b})={}",
            dac + dcb
        );
    });
}

#[test]
fn normalized_distance_is_bounded() {
    trials(256, 0x0B0D, |rng| {
        let a = rand_word(rng, 26, 8);
        let b = rand_word(rng, 26, 8);
        let d = normalized_distance(&Value::str(&a), &Value::str(&b));
        assert!((0.0..=1.0).contains(&d));
        assert_eq!(d == 0.0, a == b);
    });
}

#[test]
fn equivalence_progress_is_monotone_and_bounded() {
    trials(128, 0xE0F5, |rng| {
        let mut eq = EqClasses::new(8, 1, |_, _| 1.0);
        let cells = 8u64;
        let target_x = Target::Const(ValueId::of(&Value::str("x")));
        for _ in 0..rng.gen_range(1..40usize) {
            let i = rng.gen_range(0..8u32);
            let j = rng.gen_range(0..8u32);
            let kind = rng.gen_range(0..3u32);
            let (ci, cj) = (
                Cell::new(cfdclean::model::TupleId(i), AttrId(0)),
                Cell::new(cfdclean::model::TupleId(j), AttrId(0)),
            );
            let before = eq.progress();
            let _ = match kind {
                0 => eq.merge(ci, cj).map(|_| ()),
                1 => eq.set_target(ci, target_x).map(|_| ()),
                _ => eq.set_target(ci, Target::Null).map(|_| ()),
            };
            let after = eq.progress();
            assert!(after >= before, "progress regressed");
            assert!(after <= 4 * cells, "progress exceeded the 4·cells bound");
        }
    });
}

#[test]
fn csv_round_trips_arbitrary_relations() {
    trials(128, 0xC5B, |rng| {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let rel = build_relation(&schema, rand_rows(rng));
        let mut buf = Vec::new();
        csv::write_relation(&rel, &mut buf).unwrap();
        let back = csv::read_relation("r", &mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), rel.len());
        for (id, t) in rel.iter() {
            assert_eq!(back.tuple(id).unwrap().values(), t.values());
        }
    });
}
