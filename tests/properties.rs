//! Property-based tests (proptest) over the core invariants:
//!
//! * both repair algorithms always terminate with `Repr |= Σ` on random
//!   relations and random CFD sets (the Theorem 4.2 / 5.3 guarantees);
//! * the DL distance is a metric (identity, symmetry, triangle
//!   inequality) and the normalized form stays in `[0, 1]`;
//! * equivalence-class progress is monotone and bounded;
//! * incremental insertion of consistent tuples is a no-op;
//! * CSV round-trips arbitrary values.

use proptest::prelude::*;

use cfdclean::cfd::pattern::{PatternRow, PatternValue};
use cfdclean::cfd::violation::check;
use cfdclean::cfd::{Cfd, Sigma};
use cfdclean::model::{csv, AttrId, Relation, Schema, Tuple, Value};
use cfdclean::repair::distance::{dl_distance, normalized_distance};
use cfdclean::repair::equivalence::{Cell, EqClasses, Target};
use cfdclean::repair::{batch_repair, inc_repair, BatchConfig, IncConfig};

const ARITY: usize = 4;

/// A small value universe keeps collision (and thus violation) rates high.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => (0..6u32).prop_map(|i| Value::str(format!("v{i}"))),
        1 => Just(Value::Null),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(value_strategy(), ARITY)
}

fn relation_strategy() -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(tuple_strategy(), 1..14)
}

/// Random normal-form CFDs over the fixed 4-attribute schema. LHS and RHS
/// attrs are distinct; patterns draw from the same value universe.
fn cfd_strategy() -> impl Strategy<Value = (usize, usize, Option<String>, Option<String>)> {
    (0..ARITY, 0..ARITY, proptest::option::of(0..4u32), proptest::option::of(0..4u32)).prop_map(
        |(l, r, lp, rp)| {
            (
                l,
                r,
                lp.map(|i| format!("v{i}")),
                rp.map(|i| format!("v{i}")),
            )
        },
    )
}

fn build_sigma(schema: &Schema, raw: Vec<(usize, usize, Option<String>, Option<String>)>) -> Sigma {
    let mut cfds = Vec::new();
    for (i, (l, r, lp, rp)) in raw.into_iter().enumerate() {
        let r = if l == r { (r + 1) % ARITY } else { r };
        let lhs_pat = match lp {
            Some(v) => PatternValue::Const(Value::str(v)),
            None => PatternValue::Wildcard,
        };
        let rhs_pat = match rp {
            Some(v) => PatternValue::Const(Value::str(v)),
            None => PatternValue::Wildcard,
        };
        cfds.push(
            Cfd::new(
                &format!("c{i}"),
                vec![AttrId(l as u16)],
                vec![AttrId(r as u16)],
                vec![PatternRow::new(vec![lhs_pat], vec![rhs_pat])],
            )
            .unwrap(),
        );
    }
    Sigma::normalize(schema.clone(), cfds).unwrap()
}

fn build_relation(schema: &Schema, rows: Vec<Vec<Value>>) -> Relation {
    let mut rel = Relation::new(schema.clone());
    for row in rows {
        rel.insert(Tuple::new(row)).unwrap();
    }
    rel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_repair_always_satisfies_sigma(
        rows in relation_strategy(),
        raw_cfds in proptest::collection::vec(cfd_strategy(), 1..5),
    ) {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = build_sigma(&schema, raw_cfds);
        let rel = build_relation(&schema, rows);
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        prop_assert!(check(&out.repair, &sigma));
        // ids and cardinality preserved: repairs are value modifications
        prop_assert_eq!(out.repair.len(), rel.len());
    }

    #[test]
    fn incremental_repair_always_satisfies_sigma(
        rows in relation_strategy(),
        delta in proptest::collection::vec(tuple_strategy(), 1..5),
        raw_cfds in proptest::collection::vec(cfd_strategy(), 1..5),
    ) {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = build_sigma(&schema, raw_cfds);
        let rel = build_relation(&schema, rows);
        // start from a guaranteed-clean base
        let clean = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap().repair;
        let delta: Vec<Tuple> = delta.into_iter().map(Tuple::new).collect();
        let out = inc_repair(&clean, &delta, &sigma, IncConfig::default()).unwrap();
        prop_assert!(check(&out.repair, &sigma));
        // the clean base is untouched
        for (id, t) in clean.iter() {
            prop_assert_eq!(out.repair.tuple(id).unwrap(), t);
        }
    }

    #[test]
    fn batch_repair_is_idempotent(
        rows in relation_strategy(),
        raw_cfds in proptest::collection::vec(cfd_strategy(), 1..5),
    ) {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = build_sigma(&schema, raw_cfds);
        let rel = build_relation(&schema, rows);
        let first = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        let second = batch_repair(&first.repair, &sigma, BatchConfig::default()).unwrap();
        prop_assert_eq!(second.stats.steps, 0, "repairing a repair must be a no-op");
        prop_assert_eq!(second.stats.cost, 0.0);
        for (id, t) in first.repair.iter() {
            prop_assert_eq!(second.repair.tuple(id).unwrap(), t);
        }
    }

    #[test]
    fn inserting_consistent_tuples_changes_nothing(
        rows in relation_strategy(),
        raw_cfds in proptest::collection::vec(cfd_strategy(), 1..4),
    ) {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let sigma = build_sigma(&schema, raw_cfds);
        let rel = build_relation(&schema, rows);
        let clean = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap().repair;
        // re-inserting an existing clean tuple must be a no-op repair
        let existing: Vec<Tuple> = clean.iter().take(2).map(|(_, t)| t.clone()).collect();
        let out = inc_repair(&clean, &existing, &sigma, IncConfig::default()).unwrap();
        prop_assert_eq!(out.stats.modified, 0);
        prop_assert_eq!(out.stats.cost, 0.0);
    }

    #[test]
    fn dl_distance_is_a_metric(a in "[a-c]{0,6}", b in "[a-c]{0,6}", c in "[a-c]{0,6}") {
        let dab = dl_distance(&a, &b);
        let dba = dl_distance(&b, &a);
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(dab == 0, a == b);
        // triangle inequality (OSA satisfies it over this alphabet size)
        let dac = dl_distance(&a, &c);
        let dcb = dl_distance(&c, &b);
        prop_assert!(dab <= dac + dcb, "d({a},{b})={dab} > d({a},{c})+d({c},{b})={}", dac + dcb);
    }

    #[test]
    fn normalized_distance_is_bounded(a in "[a-z0-9]{0,8}", b in "[a-z0-9]{0,8}") {
        let d = normalized_distance(&Value::str(&a), &Value::str(&b));
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d == 0.0, a == b);
    }

    #[test]
    fn equivalence_progress_is_monotone_and_bounded(
        ops in proptest::collection::vec((0..8u32, 0..8u32, 0..3u8), 1..40),
    ) {
        let mut eq = EqClasses::new(8, 1, |_, _| 1.0);
        let cells = 8u64;
        let mut last = eq.progress();
        for (i, j, kind) in ops {
            let (ci, cj) = (
                Cell::new(cfdclean::model::TupleId(i), AttrId(0)),
                Cell::new(cfdclean::model::TupleId(j), AttrId(0)),
            );
            let before = eq.progress();
            let _ = match kind {
                0 => eq.merge(ci, cj).map(|_| ()),
                1 => eq.set_target(ci, Target::Const(Value::str("x"))).map(|_| ()),
                _ => eq.set_target(ci, Target::Null).map(|_| ()),
            };
            let after = eq.progress();
            prop_assert!(after >= before, "progress regressed");
            prop_assert!(after <= 4 * cells, "progress exceeded the 4·cells bound");
            last = after;
        }
        prop_assert!(last <= 4 * cells);
    }

    #[test]
    fn csv_round_trips_arbitrary_relations(rows in relation_strategy()) {
        let schema = Schema::new("r", &["a", "b", "c", "d"]).unwrap();
        let rel = build_relation(&schema, rows);
        let mut buf = Vec::new();
        csv::write_relation(&rel, &mut buf).unwrap();
        let back = csv::read_relation("r", &mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), rel.len());
        for (id, t) in rel.iter() {
            prop_assert_eq!(back.tuple(id).unwrap().values(), t.values());
        }
    }
}
