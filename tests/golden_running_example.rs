//! Golden pin of the paper's §2 running example, end to end.
//!
//! The `cust`/`order` relation of Fig. 1, its CFDs, the detected
//! violations, and the `BATCHREPAIR` output are committed as fixture
//! files under `tests/fixtures/`. Storage refactors (like the columnar
//! pivot this suite rode in on) must reproduce the fixtures **byte for
//! byte on both layouts** — any silent semantic drift in the pipeline
//! shows up as a fixture diff.
//!
//! Regenerate deliberately with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_running_example
//! ```

use std::fmt::Write as _;
use std::path::Path;

use cfdclean::cfd::parser::parse_rules;
use cfdclean::cfd::violation::{detect, ViolationReport};
use cfdclean::cfd::{CfdId, Sigma};
use cfdclean::model::csv::{read_relation, read_weights, write_relation};
use cfdclean::model::{Relation, Schema, StorageLayout};
use cfdclean::repair::{batch_repair, BatchConfig};

const FIXTURES: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");

fn schema() -> Schema {
    Schema::new(
        "cust",
        &["id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip"],
    )
    .unwrap()
}

fn sigma() -> Sigma {
    let s = schema();
    let rules = std::fs::read_to_string(Path::new(FIXTURES).join("cust_rules.txt"))
        .expect("fixture cust_rules.txt");
    let cfds = parse_rules(&s, &rules).expect("fixture rules parse");
    Sigma::normalize(s, cfds).expect("fixture rules normalize")
}

/// The dirty `cust` relation, loaded from the committed CSV fixtures in
/// the requested layout.
fn load_dirty(layout: StorageLayout) -> Relation {
    let data =
        std::fs::read(Path::new(FIXTURES).join("cust_dirty.csv")).expect("fixture cust_dirty.csv");
    let mut rel = read_relation("cust", &mut data.as_slice()).expect("fixture parses");
    let weights = std::fs::read(Path::new(FIXTURES).join("cust_weights.csv"))
        .expect("fixture cust_weights.csv");
    read_weights(&mut rel, &mut weights.as_slice()).expect("fixture weights parse");
    rel.to_layout(layout)
}

/// Stable text rendering of a violation report.
fn render_report(report: &ViolationReport, sigma: &Sigma) -> String {
    let mut out = String::new();
    writeln!(out, "total={}", report.total).unwrap();
    for id in report.dirty_tuples() {
        writeln!(out, "{id} vio={}", report.vio(id)).unwrap();
    }
    for (i, ids) in report.per_cfd.iter().enumerate() {
        if ids.is_empty() {
            continue;
        }
        let n = sigma.get(CfdId(i as u32));
        let list: Vec<String> = ids.iter().map(|t| t.to_string()).collect();
        writeln!(
            out,
            "{}:{} -> {}",
            n.source_name(),
            n.source_row(),
            list.join(",")
        )
        .unwrap();
    }
    out
}

fn check_or_update(name: &str, actual: &str) {
    let path = Path::new(FIXTURES).join(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable ({e}); run with GOLDEN_UPDATE=1"));
    assert_eq!(
        actual, expected,
        "pipeline output diverged from fixture {name}; \
         if the change is intentional, regenerate with GOLDEN_UPDATE=1"
    );
}

#[test]
fn golden_cust_pipeline_is_pinned_on_both_layouts() {
    let sigma = sigma();
    for layout in [StorageLayout::Columnar, StorageLayout::RowMajor] {
        let dirty = load_dirty(layout);
        assert_eq!(dirty.layout(), layout);

        // Stage 1: the dirty relation itself round-trips the fixture.
        let mut dirty_csv = Vec::new();
        write_relation(&dirty, &mut dirty_csv).unwrap();
        check_or_update("cust_dirty.csv", std::str::from_utf8(&dirty_csv).unwrap());

        // Stage 2: detected violations.
        let report = detect(&dirty, &sigma);
        assert!(!report.is_clean(), "fixture data must be dirty");
        check_or_update("cust_violations.txt", &render_report(&report, &sigma));

        // Stage 3: the batch repair.
        let out = batch_repair(&dirty, &sigma, BatchConfig::default()).unwrap();
        assert!(cfdclean::cfd::check(&out.repair, &sigma));
        let mut repaired_csv = Vec::new();
        write_relation(&out.repair, &mut repaired_csv).unwrap();
        check_or_update(
            "cust_repaired.csv",
            std::str::from_utf8(&repaired_csv).unwrap(),
        );
    }
}
