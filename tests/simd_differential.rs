//! SIMD-on vs SIMD-off differential conformance suite.
//!
//! PR 6 replaced the hot distance kernel with a bit-parallel Myers/Hyyrö
//! DP (`cfd_repair::pricing`) and the constant-pattern detection scan
//! with a key-major 8-lane sweep — both pure speedups under the repo's
//! byte-identical determinism contract. This harness is the proof:
//!
//! * the bit-parallel kernel returns the **same integers** as the scalar
//!   reference OSA on seeded random strings — ASCII, multibyte UTF-8,
//!   empty, >64-char values crossing the u64 word boundary, and
//!   transposition-heavy typo strings — for both the exact and the
//!   bounded (cutoff) form;
//! * 300 seeded repair trials (200 `BATCHREPAIR` across thread and
//!   speculation corners + 100 `INCREPAIR`) produce byte-identical
//!   repairs and exact `f64` cost bits with the kernels forced on vs
//!   forced off (`BatchConfig::simd` / `IncConfig::simd`, the in-process
//!   form of `CFD_SIMD`); the CI determinism matrix additionally runs a
//!   `CFD_SIMD=0` corner over the whole suite;
//! * the vectorized constant scan reports exactly the violations of the
//!   scalar scan on random relations with nulls and tombstones.
//!
//! Seeded trials via `cfd_prng`; failures reproduce exactly from the seed.

use cfd_prng::{trials, ChaCha8Rng, Rng};

use cfdclean::cfd::pattern::{PatternRow, PatternValue};
use cfdclean::cfd::violation::{constant_scan_with_kernel, Engine};
use cfdclean::cfd::{Cfd, Sigma};
use cfdclean::model::{AttrId, Relation, Schema, Tuple, TupleId, Value};
use cfdclean::repair::distance::{dl_distance_bounded, dl_distance_reference};
use cfdclean::repair::pricing::TargetPricer;
use cfdclean::repair::{
    batch_repair, inc_repair, BatchConfig, IncConfig, Parallelism, PickStrategy,
};

const ARITY: usize = 4;

// ---------------------------------------------------------------------------
// Kernel-level properties: bit-parallel == scalar reference OSA.
// ---------------------------------------------------------------------------

/// Assert kernel agreement on one pair: exact distance, and the bounded
/// form's exact `Some(d) iff d ≤ cutoff` semantics around the distance.
fn assert_kernels_agree(a: &str, b: &str) {
    let want = dl_distance_reference(a, b);
    let p = TargetPricer::with_kernel(a, true);
    assert_eq!(p.distance(b), want, "bitparallel {a:?} vs {b:?}");
    for cutoff in want.saturating_sub(2)..=want + 2 {
        let got = p.distance_bounded(b, cutoff);
        let expect = if want <= cutoff { Some(want) } else { None };
        assert_eq!(got, expect, "bounded {a:?} vs {b:?} cutoff {cutoff}");
    }
    // The public entry points dispatch through the same kernels.
    assert_eq!(cfdclean::repair::distance::dl_distance(a, b), want);
    assert_eq!(
        dl_distance_bounded(a, b, want),
        Some(want),
        "dl_distance_bounded at the exact distance {a:?} vs {b:?}"
    );
}

fn rand_ascii(rng: &mut ChaCha8Rng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0..9u32) as u8))
        .collect()
}

fn rand_multibyte(rng: &mut ChaCha8Rng, max_len: usize) -> String {
    const PALETTE: [char; 12] = ['a', 'b', 'é', 'ü', 'ß', '日', '本', 'č', 'x', 'ø', 'λ', '9'];
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| PALETTE[rng.gen_range(0..PALETTE.len())])
        .collect()
}

/// A typo-heavy variant of `s`: a few adjacent transpositions plus an
/// occasional substitution — the noise model the OSA extension exists for.
fn transpose_noise(rng: &mut ChaCha8Rng, s: &str) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.len() >= 2 {
        for _ in 0..rng.gen_range(1..4usize) {
            let i = rng.gen_range(0..chars.len() - 1);
            chars.swap(i, i + 1);
        }
    }
    if !chars.is_empty() && rng.gen_bool(0.5) {
        let i = rng.gen_range(0..chars.len());
        chars[i] = char::from(b'a' + rng.gen_range(0..9u32) as u8);
    }
    chars.into_iter().collect()
}

#[test]
fn bitparallel_matches_reference_ascii() {
    trials(400, 0x51AD_A5C1, |rng| {
        let a = rand_ascii(rng, 24);
        let b = rand_ascii(rng, 24);
        assert_kernels_agree(&a, &b);
        assert_kernels_agree(&a, &transpose_noise(rng, &a));
    });
}

#[test]
fn bitparallel_matches_reference_multibyte() {
    trials(300, 0x51AD_0075, |rng| {
        let a = rand_multibyte(rng, 16);
        // Mixed pairings: multibyte/multibyte and multibyte/ASCII, so the
        // ASCII fast path's zero-mask handling of non-ASCII candidates is
        // exercised from both sides.
        let b = if rng.gen_bool(0.5) {
            rand_multibyte(rng, 16)
        } else {
            rand_ascii(rng, 16)
        };
        assert_kernels_agree(&a, &b);
        assert_kernels_agree(&b, &a);
        assert_kernels_agree(&a, "");
        assert_kernels_agree("", &a);
    });
}

#[test]
fn bitparallel_matches_reference_across_word_boundary() {
    trials(150, 0x51AD_B0DD, |rng| {
        // Targets straddling the 64-char single-word limit: 60..=70 plus
        // an occasional ~120-char value. Past 64 the pricer falls back to
        // the scalar kernel; both sides of the seam must agree with the
        // reference and with each other.
        let len = if rng.gen_bool(0.2) {
            rng.gen_range(110..130usize)
        } else {
            rng.gen_range(60..=70usize)
        };
        let a: String = (0..len)
            .map(|_| char::from(b'a' + rng.gen_range(0..5u32) as u8))
            .collect();
        let b = transpose_noise(rng, &a);
        assert_kernels_agree(&a, &b);
        assert_kernels_agree(&b, &a);
        assert_kernels_agree(&a, &rand_ascii(rng, 80));
    });
}

#[test]
fn bitparallel_matches_reference_transposition_heavy() {
    trials(300, 0x51AD_7A95, |rng| {
        // Tiny alphabet → dense repeats → the `pm_prev`/`d0_prev` carry
        // chain is constantly active.
        let len = rng.gen_range(2..20usize);
        let a: String = (0..len)
            .map(|_| char::from(b'a' + rng.gen_range(0..3u32) as u8))
            .collect();
        let b = transpose_noise(rng, &a);
        let c: String = a.chars().rev().collect();
        assert_kernels_agree(&a, &b);
        assert_kernels_agree(&a, &c);
    });
}

// ---------------------------------------------------------------------------
// Repair-level differential: kernels on vs off, byte-identical repairs.
// ---------------------------------------------------------------------------

fn schema() -> Schema {
    Schema::new("simd", &["a", "b", "c", "d"]).unwrap()
}

/// Value universe with real string variety: city-like names the pricing
/// kernels chew on (including one >64-char value that forces the scalar
/// fallback for that target), plus nulls.
fn rand_value(rng: &mut ChaCha8Rng) -> Value {
    match rng.gen_range(0..12u32) {
        0 => Value::Null,
        1 => Value::str("Philadelphia-Center-City-Annex-With-A-Deliberately-Overlong-Label-19014"),
        n => Value::str(format!("Springfield-{:02}", n % 7)),
    }
}

fn rand_tuple(rng: &mut ChaCha8Rng) -> Tuple {
    let values: Vec<Value> = (0..ARITY).map(|_| rand_value(rng)).collect();
    let weights: Vec<f64> = (0..ARITY)
        .map(|_| (rng.gen_range(0..=10u32) as f64) / 10.0)
        .collect();
    Tuple::with_weights(values, weights)
}

fn rand_relation(rng: &mut ChaCha8Rng) -> Relation {
    let mut rel = Relation::new(schema());
    for _ in 0..rng.gen_range(2..14usize) {
        rel.insert(rand_tuple(rng)).unwrap();
    }
    for _ in 0..rng.gen_range(0..3usize) {
        let id = TupleId(rng.gen_range(0..rel.slot_count() as u32));
        let _ = rel.delete(id);
    }
    rel
}

fn rand_sigma(rng: &mut ChaCha8Rng, schema: &Schema) -> Sigma {
    let n = rng.gen_range(1..=3usize);
    let mut cfds = Vec::new();
    for i in 0..n {
        let l = rng.gen_range(0..ARITY);
        let mut r = rng.gen_range(0..ARITY);
        if l == r {
            r = (r + 1) % ARITY;
        }
        let pat = |rng: &mut ChaCha8Rng| {
            if rng.gen_bool(0.5) {
                PatternValue::Const(Value::str(format!(
                    "Springfield-{:02}",
                    rng.gen_range(2..6)
                )))
            } else {
                PatternValue::Wildcard
            }
        };
        let row = PatternRow::new(vec![pat(rng)], vec![pat(rng)]);
        cfds.push(
            Cfd::new(
                &format!("phi{i}"),
                vec![AttrId(l as u16)],
                vec![AttrId(r as u16)],
                vec![row],
            )
            .unwrap(),
        );
    }
    Sigma::normalize(schema.clone(), cfds).unwrap()
}

/// Bit-level equality of two relations: same id space, same liveness,
/// same value ids, same weight bits.
fn assert_same_contents(reference: &Relation, got: &Relation, ctx: &str) {
    assert_eq!(reference.len(), got.len(), "{ctx}: live count");
    assert_eq!(reference.slot_count(), got.slot_count(), "{ctx}: slots");
    for slot in 0..reference.slot_count() {
        let id = TupleId(slot as u32);
        match (reference.tuple(id), got.tuple(id)) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                for i in 0..ARITY {
                    let attr = AttrId(i as u16);
                    assert_eq!(a.id(attr), b.id(attr), "{ctx}: {id} attr {i} value");
                    assert_eq!(
                        a.weight(attr).to_bits(),
                        b.weight(attr).to_bits(),
                        "{ctx}: {id} attr {i} weight"
                    );
                }
            }
            (a, b) => panic!("{ctx}: liveness of {id} diverged ({a:?} vs {b:?})"),
        }
    }
}

/// 200 trials: `BATCHREPAIR` with the scalar kernels (simd off) is the
/// reference; the bit-parallel kernels must reproduce it byte-for-byte —
/// repairs, stats, and exact cost bits — at serial, sharded, and
/// speculative corners and under both pickers.
#[test]
fn differential_batch_simd_on_off() {
    trials(200, 0x51AD_BA7C, |rng| {
        let rel = rand_relation(rng);
        let sigma = rand_sigma(rng, &schema());
        let pick = if rng.gen_bool(0.5) {
            PickStrategy::GlobalBest
        } else {
            PickStrategy::DependencyOrdered
        };
        let reference = batch_repair(
            &rel,
            &sigma,
            BatchConfig {
                pick,
                parallelism: Parallelism::serial(),
                speculate: 0,
                simd: Some(false),
                ..Default::default()
            },
        )
        .unwrap();
        for (threads, k) in [(0usize, 0usize), (2, 4), (8, 16)] {
            let parallelism = if threads == 0 {
                Parallelism::serial()
            } else {
                Parallelism::threads(threads)
            };
            let fast = batch_repair(
                &rel,
                &sigma,
                BatchConfig {
                    pick,
                    parallelism,
                    speculate: k,
                    simd: Some(true),
                    ..Default::default()
                },
            )
            .unwrap();
            let ctx = format!("batch {pick:?} simd-on threads={threads} k={k}");
            assert_same_contents(&reference.repair, &fast.repair, &ctx);
            assert_eq!(reference.stats, fast.stats, "{ctx}: stats");
            assert_eq!(
                reference.stats.cost.to_bits(),
                fast.stats.cost.to_bits(),
                "{ctx}: cost bits"
            );
        }
    });
}

/// 100 trials: `INCREPAIR` with kernels on vs off — identical repairs,
/// delta ids, and stats (cost bits included).
#[test]
fn differential_increpair_simd_on_off() {
    trials(100, 0x51AD_14C0, |rng| {
        let rel = rand_relation(rng);
        let sigma = rand_sigma(rng, &schema());
        let base = batch_repair(&rel, &sigma, BatchConfig::default())
            .unwrap()
            .repair;
        let delta: Vec<Tuple> = (0..rng.gen_range(1..5usize))
            .map(|_| rand_tuple(rng))
            .collect();
        let reference = inc_repair(
            &base,
            &delta,
            &sigma,
            IncConfig {
                simd: Some(false),
                ..Default::default()
            },
        )
        .unwrap();
        let fast = inc_repair(
            &base,
            &delta,
            &sigma,
            IncConfig {
                simd: Some(true),
                ..Default::default()
            },
        )
        .unwrap();
        assert_same_contents(&reference.repair, &fast.repair, "inc simd-on");
        assert_eq!(reference.delta_ids, fast.delta_ids, "inc: delta ids");
        assert_eq!(reference.stats, fast.stats, "inc: stats");
        assert_eq!(
            reference.stats.cost.to_bits(),
            fast.stats.cost.to_bits(),
            "inc: cost bits"
        );
    });
}

/// 150 trials: the vectorized constant scan reports exactly the scalar
/// scan's violations on random relations with nulls and tombstones.
#[test]
fn differential_constant_scan_simd() {
    trials(150, 0x51AD_DE7E, |rng| {
        let rel = rand_relation(rng);
        let sigma = rand_sigma(rng, &schema());
        let engine = Engine::build(&rel, &sigma);
        let scalar = constant_scan_with_kernel(&rel, &sigma, &engine, false);
        let simd = constant_scan_with_kernel(&rel, &sigma, &engine, true);
        assert_eq!(simd, scalar, "constant scan reports diverged");
    });
}
