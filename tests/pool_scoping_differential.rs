//! Cross-dataset pool-scoping differential suite.
//!
//! Repairs must depend only on (dataset, rules, config) — never on what
//! else the process loaded before or since. Under the old process-global
//! [`ValuePool`] that invariant did not hold: every dataset interned into
//! one dictionary, so loading dataset B inflated the `use_count`s that
//! `FINDV` uses to break candidate ties in dataset A, and running the
//! same repair twice re-interned Σ's pattern constants and drifted the
//! counters between runs. With dataset-scoped pools, an in-process
//! single-dataset run is state-identical to a fresh process — the pool
//! contains exactly the dataset's own values — which is what lets this
//! suite pin the fresh-process baseline without spawning one.
//!
//! Three gates:
//!
//! * **Cross-dataset differential** — load A and B in one process in
//!   both orders (detecting and repairing B in between, the realistic
//!   interference), and assert A's detect report, `BATCHREPAIR` output
//!   and `INCREPAIR` output are byte-identical (stats and exact cost
//!   bits included) to the single-dataset run, across the full
//!   threads × speculation × SIMD-kernel corner matrix.
//! * **Repeat-repair regression** — repairing the same loaded dataset
//!   twice in one process, re-normalizing Σ each time as the CLI does,
//!   must be byte-identical run to run.
//! * **Pool-growth gate** — a load / repair / evict loop over one
//!   long-lived pool returns slot count and byte estimate to baseline
//!   every round ([`ValuePool::retire_ids`] + [`ValuePool::compact`]).
//!
//! The workload is engineered to sit exactly on the historical failure
//! point: in A, candidates `x` and `y` have equal pool-wide use counts
//! (a `FINDV` tie), and B is `y`-heavy — under a shared pool, B's load
//! order would have flipped A's tie-break.

use cfdclean::cfd::pattern::{PatternRow, PatternValue};
use cfdclean::cfd::{violation, Cfd, Sigma, ViolationReport};
use cfdclean::model::csv::{read_relation_in, write_relation};
use cfdclean::model::{AttrId, Relation, Tuple, TupleId, Value, ValueId, ValuePool};
use cfdclean::repair::incremental::IncStats;
use cfdclean::repair::{batch_repair, inc_repair, BatchConfig, BatchStats, IncConfig, Parallelism};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SPEC_DEPTHS: [usize; 2] = [0, 8];
const SIMD_KERNELS: [bool; 2] = [false, true];

/// Dataset A. Under `fd: [a] -> [b]`, group `k1` conflicts with `b`
/// split 2/2 between `x` and `y`; pool-wide both values occur exactly
/// three times (see `workload_sits_on_a_use_count_tie_break`), so the
/// `FINDV` winner rests on the tie-break that cross-dataset interning
/// used to perturb. Row `k2` additionally violates the constant rule
/// `(z0 || w0)` on `[d] -> [c]`.
const A_CSV: &str = "\
a,b,c,d
k1,x,w0,z0
k1,x,w1,z1
k1,y,w0,z0
k1,y,w1,z1
k2,x,w1,z0
k3,y,w0,z0
";

/// Dataset B: `y`-heavy (ten occurrences across its columns) and dirty
/// under the same rules, so detecting and repairing it does real work.
/// Under the old global pool, loading B shifted `use_count(y)` far past
/// `use_count(x)` and flipped A's `k1` resolution.
const B_CSV: &str = "\
a,b,c,d
m1,y,y,z0
m1,y,y,z0
m1,q,w0,z0
m2,y,y,y
m2,y,y,y
";

/// Every load gets its own pool, exactly like the CSV-import path.
fn load(csv: &str) -> Relation {
    read_relation_in("pooldiff", &mut csv.as_bytes(), ValuePool::new_handle()).unwrap()
}

fn cfds() -> Vec<Cfd> {
    let fd = Cfd::standard_fd("fd", vec![AttrId(0)], vec![AttrId(1)]);
    let cons = Cfd::new(
        "cons",
        vec![AttrId(3)],
        vec![AttrId(2)],
        vec![PatternRow::new(
            vec![PatternValue::constant("z0")],
            vec![PatternValue::constant("w0")],
        )],
    )
    .unwrap();
    vec![fd, cons]
}

/// Σ's pattern constants must live in the pool of the relation they are
/// matched against.
fn sigma_for(rel: &Relation) -> Sigma {
    Sigma::normalize_in(rel.schema().clone(), cfds(), rel.pool()).unwrap()
}

/// ΔD for the incremental leg, interned into the base's pool: one tuple
/// joining the contested `k1` group, one opening a fresh group.
fn delta_for(rel: &Relation) -> Vec<Tuple> {
    let pool = rel.pool();
    let row = |cells: [&str; 4]| {
        Tuple::from_ids(cells.iter().map(|c| pool.intern(&Value::str(*c))).collect())
    };
    vec![row(["k1", "q", "w1", "z0"]), row(["k4", "x", "w0", "z1"])]
}

fn render(rel: &Relation) -> Vec<u8> {
    let mut buf = Vec::new();
    write_relation(rel, &mut buf).unwrap();
    buf
}

/// Everything observable about one dataset at one config corner.
#[derive(Debug, PartialEq)]
struct CornerOutput {
    label: String,
    batch_csv: Vec<u8>,
    batch_stats: BatchStats,
    batch_cost_bits: u64,
    inc_csv: Vec<u8>,
    inc_delta_ids: Vec<TupleId>,
    inc_stats: IncStats,
    inc_cost_bits: u64,
}

#[derive(Debug, PartialEq)]
struct DatasetOutputs {
    detect: ViolationReport,
    corners: Vec<CornerOutput>,
}

/// Detect, then run `BATCHREPAIR` and (over the repaired base)
/// `INCREPAIR` across the threads × speculation × kernel matrix.
fn dataset_outputs(rel: &Relation, delta: &[Tuple]) -> DatasetOutputs {
    let sigma = sigma_for(rel);
    let detect = violation::detect(rel, &sigma);
    let mut corners = Vec::new();
    for threads in THREAD_COUNTS {
        for speculate in SPEC_DEPTHS {
            for simd in SIMD_KERNELS {
                let batch = batch_repair(
                    rel,
                    &sigma,
                    BatchConfig {
                        parallelism: Parallelism::threads(threads),
                        speculate,
                        simd: Some(simd),
                        ..Default::default()
                    },
                )
                .unwrap();
                let inc = inc_repair(
                    &batch.repair,
                    delta,
                    &sigma,
                    IncConfig {
                        parallelism: Parallelism::threads(threads),
                        simd: Some(simd),
                        ..Default::default()
                    },
                )
                .unwrap();
                corners.push(CornerOutput {
                    label: format!("threads={threads} speculate={speculate} simd={simd}"),
                    batch_csv: render(&batch.repair),
                    batch_stats: batch.stats,
                    batch_cost_bits: batch.stats.cost.to_bits(),
                    inc_csv: render(&inc.repair),
                    inc_delta_ids: inc.delta_ids,
                    inc_stats: inc.stats,
                    inc_cost_bits: inc.stats.cost.to_bits(),
                });
            }
        }
    }
    DatasetOutputs { detect, corners }
}

/// The cross-dataset interference source: fully exercise B (detect and
/// repair), which under the old global pool bumped shared counters.
fn churn(b: &Relation) {
    let sigma = sigma_for(b);
    let report = violation::detect(b, &sigma);
    assert!(report.total > 0, "B must be dirty for the churn to matter");
    batch_repair(b, &sigma, BatchConfig::default()).unwrap();
}

/// The workload really sits on the knife edge the suite is about: `x`
/// and `y` tie on pool-wide use count in A's own pool, so the `FINDV`
/// winner is decided by the tie-break that shared-pool history used to
/// perturb.
#[test]
fn workload_sits_on_a_use_count_tie_break() {
    let a = load(A_CSV);
    let x = a.pool().lookup(&Value::str("x")).unwrap();
    let y = a.pool().lookup(&Value::str("y")).unwrap();
    assert_eq!(a.pool().use_count(x), a.pool().use_count(y));
}

/// Satellite of the scoped-pool invariant: A's outputs with B loaded
/// and churned before or after it are byte-identical to A alone —
/// detect report, repairs, stats, and exact cost bits, at every corner.
#[test]
fn dataset_outputs_are_process_history_independent() {
    let alone = {
        let a = load(A_CSV);
        let delta = delta_for(&a);
        dataset_outputs(&a, &delta)
    };
    assert!(alone.detect.total > 0, "A must actually violate Σ");

    let a_then_b = {
        let a = load(A_CSV);
        let delta = delta_for(&a);
        let b = load(B_CSV);
        churn(&b);
        dataset_outputs(&a, &delta)
    };
    assert_eq!(
        alone, a_then_b,
        "loading and repairing B after A changed A's outputs"
    );

    let b_then_a = {
        let b = load(B_CSV);
        churn(&b);
        let a = load(A_CSV);
        let delta = delta_for(&a);
        dataset_outputs(&a, &delta)
    };
    assert_eq!(
        alone, b_then_a,
        "loading and repairing B before A changed A's outputs"
    );
}

/// Regression for the repeat-repair drift bug: running `repair` twice on
/// the same loaded dataset in one process re-normalizes Σ each time (as
/// the CLI does), which used to re-intern pattern constants with counted
/// occurrences, bump `use_count`, and flip `FINDV` tie-breaks on the
/// second run. Pattern interning is uncounted now; every run must be
/// byte-identical, cost bits included.
#[test]
fn repeat_repair_is_byte_identical() {
    let a = load(A_CSV);
    let run = || {
        let sigma = sigma_for(&a);
        let report = violation::detect(&a, &sigma);
        let out = batch_repair(&a, &sigma, BatchConfig::default()).unwrap();
        (
            report,
            render(&out.repair),
            out.stats,
            out.stats.cost.to_bits(),
        )
    };
    let first = run();
    for rerun in 1..4 {
        assert_eq!(
            first,
            run(),
            "repair run {rerun} on the same loaded dataset diverged from run 0"
        );
    }
}

/// Seal / compact interaction under many rounds of churn — the
/// discipline the streaming sessions (`cfdclean::stream`) lean on.
/// Sealed slots must drain exactly once: re-sealing a sealed slot is a
/// skip, compact drains the accumulated seals in one sweep, and a second
/// compact finds nothing. Values re-arriving while their old slot is
/// sealed (but not yet compacted) get fresh **append-order** ids — which
/// is exactly why a stream seals per window but never compacts
/// mid-flight: compaction opens the free list and its LIFO reuse would
/// make id assignment depend on reclamation history.
#[test]
fn many_round_seal_compact_churn_drains_each_slot_once() {
    let pool = ValuePool::new_handle();
    let anchor = pool.intern(&Value::str("anchor"));
    let baseline = pool.len();
    let mut sealed_total = 0usize;
    let mut last_id = anchor;
    for round in 0..5 {
        let a = pool.intern(&Value::str(format!("r{round}-a").as_str()));
        let b = pool.intern(&Value::str(format!("r{round}-b").as_str()));
        assert!(a > last_id && b > a, "round {round}: interns must append");
        pool.retire(a, 1);
        pool.retire(b, 1);
        assert_eq!(pool.seal_ids([a, b]), 2, "round {round}: both slots seal");
        assert_eq!(pool.len(), baseline, "round {round}: len back to baseline");
        // Re-sealing sealed slots, live slots, or null is a no-op skip.
        assert_eq!(pool.seal_ids([a, b, anchor, ValueId(0)]), 0);
        // The value re-arrives while its old slot is still sealed: it
        // must get a fresh append-ordered id, not the tombstoned one.
        let a2 = pool.intern(&Value::str(format!("r{round}-a").as_str()));
        assert!(a2 > b, "round {round}: re-arrival must not reuse the seal");
        assert_eq!(
            pool.lookup(&Value::str(format!("r{round}-a").as_str())),
            Some(a2)
        );
        pool.retire(a2, 1);
        assert_eq!(pool.seal_ids([a2]), 1);
        sealed_total += 3;
        last_id = a2;
    }
    // One compact drains every accumulated seal, exactly once.
    assert_eq!(pool.compact(), sealed_total);
    assert_eq!(pool.compact(), 0, "drained slots must not drain again");
    assert_eq!(pool.len(), baseline);
    // Post-compact the free list is open: new interns recycle ids below
    // the append frontier. Legal for request-scoped churn, fatal for an
    // open stream — hence seal-without-compact while streaming.
    let recycled = pool.intern(&Value::str("fresh-after-compact"));
    assert_eq!(
        recycled, last_id,
        "free list reuse is LIFO: last sealed, first out"
    );
}

/// Pool-growth gate: load, repair, and evict the same dataset over one
/// long-lived pool; slot count and byte estimate must return to the
/// post-first-round baseline every round. Eviction retires one
/// occurrence per live cell ([`ValuePool::retire_ids`]) and compacts
/// after dropping the relation, Σ, and repair output — Σ's constants
/// intern uncounted, and the repair only writes ids already present, so
/// the relation's cells are the pool's only counted occupants.
#[test]
fn load_repair_evict_loop_returns_pool_to_baseline() {
    let pool = ValuePool::new_handle();
    let mut baseline = None;
    for round in 0..6 {
        let rel = read_relation_in("gate", &mut A_CSV.as_bytes(), pool.clone()).unwrap();
        let sigma = sigma_for(&rel);
        let out = batch_repair(&rel, &sigma, BatchConfig::default()).unwrap();
        assert!(out.stats.cost > 0.0, "round {round} repaired nothing");
        let mut live: Vec<ValueId> = Vec::new();
        for (_, t) in rel.iter() {
            for a in rel.schema().attr_ids() {
                live.push(t.id(a));
            }
        }
        drop(out);
        drop(sigma);
        drop(rel);
        pool.retire_ids(live);
        let freed = pool.compact();
        assert!(freed > 0, "round {round} freed no slots");
        match baseline {
            None => baseline = Some((pool.len(), pool.approx_bytes())),
            Some(base) => assert_eq!(
                (pool.len(), pool.approx_bytes()),
                base,
                "round {round} grew the pool"
            ),
        }
    }
}
