//! Golden pin of the speculative resolution loop's commit/abort audit
//! trace on a small cross-shard-conflict scenario.
//!
//! The trace records every scheduling decision the plan/validate/commit
//! protocol makes — which plans committed from cache, which aborted (and
//! on which read category), which entries were replanned inline, where
//! lazy S-set `ensure`s were replayed. Changes to the validation logic
//! therefore show up as reviewable fixture diffs instead of silent
//! behaviour drift. The trace is a pure function of (data, Σ, k): the
//! accompanying differential suite pins thread-count independence, and
//! this pin fixes the k=8 schedule itself.
//!
//! Regenerate deliberately with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_speculative
//! ```

use std::path::Path;

use cfdclean::cfd::pattern::{PatternRow, PatternValue};
use cfdclean::cfd::{Cfd, Sigma};
use cfdclean::model::{AttrId, Relation, Schema, Tuple, Value};
use cfdclean::repair::{batch_repair, batch_repair_traced, BatchConfig, Parallelism};

const FIXTURES: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");

/// Cross-shard conflict scenario: five LHS groups under an FD share RHS
/// value buckets and FINDV S-groups *across* groups (and therefore across
/// shards), while a constant rule layer cross-cuts them — so concurrent
/// plans constantly read state that earlier commits mutate. High abort
/// pressure by construction.
fn scenario() -> (Relation, Sigma) {
    let schema = Schema::new("s", &["a", "b", "c", "d"]).unwrap();
    let mut rel = Relation::new(schema.clone());
    for i in 0..24u32 {
        let mut t = Tuple::new(vec![
            Value::str(format!("k{}", i % 5)),
            Value::str(format!("v{}", i % 3)),
            Value::str(format!("w{}", i % 3)),
            Value::str(format!("z{}", i % 4)),
        ]);
        t.set_weight(AttrId(1), 0.2 + 0.1 * ((i % 5) as f64));
        rel.insert(t).unwrap();
    }
    let fd = Cfd::standard_fd("fd", vec![AttrId(0)], vec![AttrId(1)]);
    let cons = Cfd::new(
        "cons",
        vec![AttrId(3)],
        vec![AttrId(2)],
        vec![PatternRow::new(
            vec![PatternValue::constant("z0")],
            vec![PatternValue::constant("w0")],
        )],
    )
    .unwrap();
    let sigma = Sigma::normalize(schema, vec![fd, cons]).unwrap();
    (rel, sigma)
}

fn config(threads: usize, k: usize) -> BatchConfig {
    BatchConfig {
        parallelism: Parallelism::threads(threads),
        speculate: k,
        ..Default::default()
    }
}

fn check_or_update(name: &str, rendered: &str) {
    let path = Path::new(FIXTURES).join(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable ({e}); run with GOLDEN_UPDATE=1"));
    assert_eq!(
        expected, rendered,
        "fixture {name} diverged; \
         if the change is intentional, regenerate with GOLDEN_UPDATE=1"
    );
}

#[test]
fn speculative_audit_trace_is_pinned() {
    let (rel, sigma) = scenario();
    let (outcome, trace) = batch_repair_traced(&rel, &sigma, config(2, 8)).unwrap();
    // The scenario must exercise every interesting event class before
    // the pin means anything.
    assert!(trace.iter().any(|l| l.starts_with("commit ")), "no commits");
    assert!(trace.iter().any(|l| l.starts_with("abort ")), "no aborts");
    assert!(
        trace.iter().any(|l| l.starts_with("inline-")),
        "no inline replans"
    );
    let sched = outcome.speculation.expect("speculative stats");
    let mut rendered = String::new();
    for line in &trace {
        rendered.push_str(line);
        rendered.push('\n');
    }
    rendered.push_str(&format!(
        "stats rounds={} planned={} hits={} commits={} aborts={} misses={} \
         requeues={} clean={} moot={} ensures={}\n",
        sched.rounds,
        sched.planned,
        sched.hits,
        sched.commits,
        sched.aborts,
        sched.misses,
        sched.requeues,
        sched.clean_drops,
        sched.moot,
        sched.ensures_replayed,
    ));
    check_or_update("speculative_audit.txt", &rendered);
}

/// The audited run repairs identically to the untraced serial reference —
/// the trace is an observer, never a participant.
#[test]
fn audited_run_matches_serial_reference() {
    let (rel, sigma) = scenario();
    let serial = batch_repair(&rel, &sigma, config(1, 0)).unwrap();
    let (spec, _) = batch_repair_traced(&rel, &sigma, config(2, 8)).unwrap();
    assert_eq!(serial.stats, spec.stats);
    assert_eq!(
        serial.stats.cost.to_bits(),
        spec.stats.cost.to_bits(),
        "cost bits diverged"
    );
    for (id, t) in serial.repair.iter() {
        assert_eq!(
            spec.repair.tuple(id).unwrap().to_tuple(),
            t.to_tuple(),
            "{id}"
        );
    }
}
