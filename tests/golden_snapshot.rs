//! Golden pin of the persistence layer over the paper's §2 running
//! example.
//!
//! The `cust` relation's snapshot (dictionary + columnar segments +
//! embedded rules) and the batch repair's id-level edit log are
//! committed as binary fixtures under `tests/fixtures/`. The snapshot
//! encoding is canonical — independent of pool history — so these files
//! must reproduce byte for byte in every process, at every thread count
//! and speculation depth of the CI matrix. The test also pins the
//! end-to-end persistence contract: snapshot load → repair equals the
//! committed `cust_repaired.csv`, and snapshot + edit log replays to the
//! same bytes without running the repair at all.
//!
//! Regenerate deliberately with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_snapshot
//! ```

use std::path::Path;

use cfdclean::model::csv::{read_relation, read_weights, write_relation};
use cfdclean::model::snapshot::{
    edit_log_to_vec, read_edit_log_in, read_snapshot, snapshot_info, snapshot_to_vec,
};
use cfdclean::model::{Relation, Schema};
use cfdclean::repair::{batch_repair, BatchConfig};

const FIXTURES: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");

fn fixture_path(name: &str) -> std::path::PathBuf {
    Path::new(FIXTURES).join(name)
}

fn schema() -> Schema {
    Schema::new(
        "cust",
        &["id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip"],
    )
    .unwrap()
}

fn load_dirty() -> Relation {
    let data = std::fs::read(fixture_path("cust_dirty.csv")).expect("fixture cust_dirty.csv");
    let mut rel = read_relation("cust", &mut data.as_slice()).expect("fixture parses");
    assert_eq!(rel.schema().arity(), schema().arity());
    let weights =
        std::fs::read(fixture_path("cust_weights.csv")).expect("fixture cust_weights.csv");
    read_weights(&mut rel, &mut weights.as_slice()).expect("fixture weights parse");
    rel
}

fn rules_text() -> String {
    std::fs::read_to_string(fixture_path("cust_rules.txt")).expect("fixture cust_rules.txt")
}

fn check_or_update_bytes(name: &str, actual: &[u8]) {
    let path = fixture_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable ({e}); run with GOLDEN_UPDATE=1"));
    assert_eq!(
        actual,
        &expected[..],
        "persisted bytes diverged from fixture {name}; \
         if the format change is intentional, regenerate with GOLDEN_UPDATE=1 \
         and bump FORMAT_VERSION"
    );
}

#[test]
fn golden_snapshot_and_edit_log_are_pinned() {
    let dirty = load_dirty();
    let rules = rules_text();

    // Stage 1: the snapshot bytes are canonical and pinned. Any change
    // here is an on-disk format change and must bump FORMAT_VERSION.
    let snap_bytes = snapshot_to_vec(&dirty, Some(&rules));
    check_or_update_bytes("cust_snapshot.cfds", &snap_bytes);

    // Stage 2: the committed snapshot loads to exactly the CSV-loaded
    // relation, rules included.
    let committed = std::fs::read(fixture_path("cust_snapshot.cfds")).expect("snapshot fixture");
    let info = snapshot_info(&committed).expect("fixture info");
    assert_eq!(info.relation, "cust");
    assert!(info.has_rules);
    let loaded = read_snapshot(&committed).expect("fixture snapshot loads");
    assert_eq!(loaded.rules.as_deref(), Some(rules.as_str()));
    assert_eq!(loaded.relation.len(), dirty.len());
    for (id, t) in dirty.iter() {
        let l = loaded.relation.tuple(id).expect("same id space");
        for a in dirty.schema().attr_ids() {
            assert_eq!(t.id(a), l.id(a), "{id} {a} value diverged after load");
            assert_eq!(
                t.weight(a).to_bits(),
                l.weight(a).to_bits(),
                "{id} {a} weight diverged after load"
            );
        }
    }

    // Stage 3: snapshot load → repair equals the committed repair of the
    // CSV path (`cust_repaired.csv`, pinned by golden_running_example).
    let cfds = cfdclean::cfd::parser::parse_rules(loaded.relation.schema(), &rules)
        .expect("embedded rules parse");
    // The snapshot loads into its own pool, so the rules' pattern
    // constants must be interned there too.
    let sigma = cfdclean::cfd::Sigma::normalize_in(
        loaded.relation.schema().clone(),
        cfds,
        loaded.relation.pool(),
    )
    .expect("embedded rules normalize");
    let out = batch_repair(&loaded.relation, &sigma, BatchConfig::default()).unwrap();
    let mut repaired_csv = Vec::new();
    write_relation(&out.repair, &mut repaired_csv).unwrap();
    let expected = std::fs::read(fixture_path("cust_repaired.csv")).expect("repair fixture");
    assert_eq!(
        repaired_csv, expected,
        "snapshot-load repair diverged from the CSV-load repair fixture"
    );

    // Stage 4: the repair's edit log is pinned, and snapshot + edit log
    // replays to the same repair without running BATCHREPAIR.
    let log = out
        .edit_log(&loaded.relation)
        .expect("repair preserves ids");
    let log_bytes = edit_log_to_vec(
        &log,
        "cust",
        loaded.relation.schema().arity(),
        loaded.relation.pool(),
    );
    check_or_update_bytes("cust_repair.cfde", &log_bytes);
    let committed_log = std::fs::read(fixture_path("cust_repair.cfde")).expect("edit-log fixture");
    let mut replayed = read_snapshot(&committed).expect("loads again").relation;
    let parsed =
        read_edit_log_in(&committed_log, replayed.pool()).expect("fixture edit log parses");
    parsed.log.apply(&mut replayed).expect("log replays");
    let mut replayed_csv = Vec::new();
    write_relation(&replayed, &mut replayed_csv).unwrap();
    assert_eq!(
        replayed_csv, expected,
        "snapshot + edit log diverged from the repair fixture"
    );
}
