//! Cross-crate pipeline tests: generator → noise → repair → evaluation →
//! statistical certification, at small scale so they run in the default
//! test budget.

use cfd_prng::ChaCha8Rng;
use cfd_prng::SeedableRng;
use cfdclean::cfd::violation::{check, detect};
use cfdclean::gen::{generate, inject, GenConfig, NoiseConfig, RunSummary, WorldConfig};
use cfdclean::model::diff::dif;
use cfdclean::model::TupleId;
use cfdclean::repair::{
    batch_repair, consistent_subset, repair_via_incremental, BatchConfig, IncConfig, Ordering,
    PickStrategy,
};
use cfdclean::sampling::{certify, GroundTruthOracle, SamplingConfig};
use std::time::Duration;

fn small_workload(seed: u64) -> cfdclean::gen::Workload {
    generate(&GenConfig {
        n_tuples: 800,
        seed,
        world: WorldConfig {
            n_customers: 250,
            n_items: 150,
            ..Default::default()
        },
    })
}

#[test]
fn batch_repair_is_consistent_and_accurate() {
    let w = small_workload(5);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let out = batch_repair(&noise.dirty, &w.sigma, BatchConfig::default()).unwrap();
    assert!(check(&out.repair, &w.sigma));
    let q = RunSummary::evaluate(&noise.dirty, &out.repair, &w.dopt, Duration::ZERO);
    assert!(q.precision > 0.7, "precision {:.2}", q.precision);
    assert!(q.recall > 0.8, "recall {:.2}", q.recall);
}

#[test]
fn incremental_repair_is_consistent_and_accurate() {
    let w = small_workload(6);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    for ordering in [Ordering::Violations, Ordering::Weight, Ordering::Linear] {
        let out = repair_via_incremental(
            &noise.dirty,
            &w.sigma,
            IncConfig {
                ordering,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(check(&out.repair, &w.sigma), "{ordering:?}");
        let q = RunSummary::evaluate(&noise.dirty, &out.repair, &w.dopt, Duration::ZERO);
        assert!(q.recall > 0.5, "{ordering:?} recall {:.2}", q.recall);
    }
}

#[test]
fn violation_ordering_beats_linear_scan() {
    // §5.2 / Fig. 9–10: V-INCREPAIR consistently outperforms L-INCREPAIR.
    // Averaged over seeds to keep the comparison stable.
    let mut v_score = 0.0;
    let mut l_score = 0.0;
    for seed in [11, 22, 33] {
        let w = small_workload(seed);
        let noise = inject(
            &w.dopt,
            &w.world,
            &NoiseConfig {
                rate: 0.08,
                seed,
                ..Default::default()
            },
        );
        let v = repair_via_incremental(
            &noise.dirty,
            &w.sigma,
            IncConfig {
                ordering: Ordering::Violations,
                ..Default::default()
            },
        )
        .unwrap();
        let l = repair_via_incremental(
            &noise.dirty,
            &w.sigma,
            IncConfig {
                ordering: Ordering::Linear,
                ..Default::default()
            },
        )
        .unwrap();
        v_score += RunSummary::evaluate(&noise.dirty, &v.repair, &w.dopt, Duration::ZERO).f1();
        l_score += RunSummary::evaluate(&noise.dirty, &l.repair, &w.dopt, Duration::ZERO).f1();
    }
    assert!(
        v_score > l_score,
        "V-IncRepair (f1 sum {v_score:.3}) should beat L-IncRepair ({l_score:.3})"
    );
}

#[test]
fn cfds_repair_more_accurately_than_embedded_fds() {
    // Fig. 8: even where the embedded FDs *detect* a conflict (a partner
    // exists), they cannot tell which side holds the right value — only
    // the pattern constants pin it. Repair accuracy under the full Σ must
    // beat the FD-only Σ. Greedy tie-breaks can hand a single seed to
    // either side, so the repair comparison aggregates over seeds (like
    // the V- vs L-IncRepair test); the detection claims are per-seed.
    let mut cfd_f1_sum = 0.0;
    let mut fd_f1_sum = 0.0;
    for seed in [7, 13, 21] {
        let w = small_workload(seed);
        let noise = inject(
            &w.dopt,
            &w.world,
            &NoiseConfig {
                rate: 0.05,
                seed,
                ..Default::default()
            },
        );
        let fd_sigma = w.sigma.embedded_fds().unwrap();
        let cfd_report = detect(&noise.dirty, &w.sigma);
        let cfd_caught = noise
            .corrupted
            .iter()
            .filter(|(id, _)| cfd_report.vio(*id) > 0)
            .count();
        assert_eq!(
            cfd_caught,
            noise.corrupted.len(),
            "CFDs catch every injected error"
        );
        // The embedded FDs can never catch *more* than the CFDs (they see
        // a strict subset of the violations: pattern-constant violations
        // are invisible without the tableau constants; whether they catch
        // fewer on a given seed depends on every corrupted cell having a
        // partner).
        let fd_report = detect(&noise.dirty, &fd_sigma);
        let fd_caught = noise
            .corrupted
            .iter()
            .filter(|(id, _)| fd_report.vio(*id) > 0)
            .count();
        assert!(
            fd_caught <= cfd_caught,
            "embedded FDs cannot catch more errors than the CFDs ({fd_caught} vs {cfd_caught})"
        );
        let cfd_out = batch_repair(&noise.dirty, &w.sigma, BatchConfig::default()).unwrap();
        let fd_out = batch_repair(&noise.dirty, &fd_sigma, BatchConfig::default()).unwrap();
        cfd_f1_sum +=
            RunSummary::evaluate(&noise.dirty, &cfd_out.repair, &w.dopt, Duration::ZERO).f1();
        fd_f1_sum +=
            RunSummary::evaluate(&noise.dirty, &fd_out.repair, &w.dopt, Duration::ZERO).f1();
    }
    assert!(
        cfd_f1_sum >= fd_f1_sum,
        "CFD repair f1 sum {cfd_f1_sum:.3} must be at least FD repair f1 sum {fd_f1_sum:.3}"
    );
}

#[test]
fn consistent_subset_matches_detection() {
    let w = small_workload(8);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let (clean, dirty) = consistent_subset(&noise.dirty, &w.sigma);
    let report = detect(&noise.dirty, &w.sigma);
    assert_eq!(dirty.len(), report.dirty_tuples().len());
    assert_eq!(clean.len() + dirty.len(), noise.dirty.len());
    // every corrupted tuple is excluded from the clean subset
    for (id, _) in &noise.corrupted {
        assert!(dirty.contains(id));
    }
}

#[test]
fn pick_strategies_both_terminate_and_satisfy() {
    let w = small_workload(9);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.06,
            ..Default::default()
        },
    );
    for pick in [PickStrategy::GlobalBest, PickStrategy::DependencyOrdered] {
        let out = batch_repair(
            &noise.dirty,
            &w.sigma,
            BatchConfig {
                pick,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(check(&out.repair, &w.sigma), "{pick:?}");
    }
}

#[test]
fn certification_accepts_good_repairs_and_rejects_the_dirty_input() {
    let w = small_workload(10);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let report = detect(&noise.dirty, &w.sigma);
    let out = batch_repair(&noise.dirty, &w.sigma, BatchConfig::default()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let config = SamplingConfig::new(0.05, 0.95, 250);
    // the repair passes
    let mut oracle = GroundTruthOracle::new(&w.dopt);
    let good = certify(
        &out.repair,
        |id| report.vio(id),
        &config,
        &mut oracle,
        &mut rng,
    )
    .unwrap();
    assert!(good.accepted, "p̂ = {:.4}", good.p_hat);
    // the raw dirty input fails the same test at tuple level… only if
    // enough corrupted tuples land in the sample; with stratification by
    // vio they all do.
    let mut oracle = GroundTruthOracle::new(&w.dopt);
    let bad = certify(
        &noise.dirty,
        |id| report.vio(id),
        &config,
        &mut oracle,
        &mut rng,
    )
    .unwrap();
    assert!(bad.p_hat > good.p_hat);
}

#[test]
fn weights_off_mode_still_works() {
    // §3.2 remark (1): without weight information the algorithms fall back
    // to violation counts; they must still produce consistent repairs.
    let w = small_workload(11);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            assign_weights: false,
            ..Default::default()
        },
    );
    let out = batch_repair(&noise.dirty, &w.sigma, BatchConfig::default()).unwrap();
    assert!(check(&out.repair, &w.sigma));
    let q = RunSummary::evaluate(&noise.dirty, &out.repair, &w.dopt, Duration::ZERO);
    assert!(q.recall > 0.6, "recall without weights {:.2}", q.recall);
}

#[test]
fn repair_changes_are_bounded_by_dif_accounting() {
    // sanity of the §7.1 bookkeeping: noises = dif(D, Dopt); the repair's
    // changes and residual satisfy the triangle-style inequality
    // residual ≤ noises + changes.
    let w = small_workload(12);
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let out = batch_repair(&noise.dirty, &w.sigma, BatchConfig::default()).unwrap();
    let noises = dif(&noise.dirty, &w.dopt);
    let changes = dif(&noise.dirty, &out.repair);
    let residual = dif(&w.dopt, &out.repair);
    assert!(residual <= noises + changes);
    assert_eq!(noises, noise.corrupted.len());
    let _ = TupleId(0);
}
