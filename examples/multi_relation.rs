//! Cleaning a multi-relation database: CFDs per relation (§2: "our
//! repairing methods are applicable to general relation schemas by
//! repairing each relation in isolation") plus inclusion dependencies
//! across relations (§9's future work, implemented in `cfd-repair`).
//!
//! Run with `cargo run --release --example multi_relation`.

use cfdclean::cfd::violation::check;
use cfdclean::cfd::{parser::parse_rules, Ind, Sigma};
use cfdclean::model::{Database, Schema, Tuple};
use cfdclean::repair::{batch_repair, repair_inds, BatchConfig, IndRepairConfig};

fn main() {
    // item catalog (the IND parent) and an order table referencing it
    let mut db = Database::new();
    let items = db.create(Schema::new("item", &["id", "name", "PR"]).unwrap());
    for (id, name, pr) in [
        ("a1001", "H. Porter", "17.99"),
        ("a1002", "Snow White", "18.99"),
        ("a2001", "J. Denver", "7.94"),
    ] {
        items.insert(Tuple::from_iter([id, name, pr])).unwrap();
    }
    let orders = db.create(Schema::new("order", &["oid", "item_id", "zip", "CT", "ST"]).unwrap());
    for row in [
        ["o1", "a1001", "19014", "PHI", "PA"],
        ["o2", "a10O1", "19014", "PHI", "PA"], // typo'd reference: O for 0
        ["o3", "a2001", "10012", "PHI", "PA"], // wrong city for the zip
        ["o4", "qqqq", "10012", "NYC", "NY"],  // unsalvageable reference
    ] {
        orders.insert(Tuple::from_iter(row)).unwrap();
    }

    // intra-relation consistency: the Fig. 1 zip CFD on `order`
    let order_schema = db.relation("order").unwrap().schema().clone();
    let cfds = parse_rules(
        &order_schema,
        "phi2: [zip] -> [CT, ST] { (10012 || NYC, NY); (19014 || PHI, PA) }",
    )
    .unwrap();
    let sigma = Sigma::normalize(order_schema, cfds).unwrap();

    // cross-relation consistency: order.item_id ⊆ item.id
    let fk = Ind::new(&db, "fk_item", "order", &["item_id"], "item", &["id"]).unwrap();

    println!(
        "before: CFDs satisfied = {}, IND violations = {:?}",
        check(db.relation("order").unwrap(), &sigma),
        fk.violations(&db).unwrap()
    );

    // 1. repair the order relation against its CFDs
    let repaired = batch_repair(
        db.relation("order").unwrap(),
        &sigma,
        BatchConfig::default(),
    )
    .expect("cfd repair succeeds");
    db.put(repaired.repair);

    // 2. repair the foreign key
    let stats = repair_inds(
        &mut db,
        std::slice::from_ref(&fk),
        &IndRepairConfig::default(),
    )
    .expect("ind repair succeeds");

    println!(
        "after: CFDs satisfied = {}, IND satisfied = {} (rebound {}, nulled {})",
        check(db.relation("order").unwrap(), &sigma),
        fk.check(&db).unwrap(),
        stats[0].rebound,
        stats[0].nulled
    );
    println!("{}", db.relation("order").unwrap());
    assert!(check(db.relation("order").unwrap(), &sigma));
    assert!(fk.check(&db).unwrap());
}
