//! The full interactive loop of Fig. 3: repair → sample → user feedback →
//! re-repair, iterating until the z-test certifies the target accuracy.
//!
//! The "user" is a ground-truth oracle; its corrections are folded back
//! into the database exactly as §6 prescribes, and the repairing module
//! runs again on the corrected state.
//!
//! Run with `cargo run --release --example accuracy_audit`.

use cfd_prng::ChaCha8Rng;
use cfd_prng::SeedableRng;
use cfdclean::cfd::violation::detect;
use cfdclean::gen::{generate, inject, GenConfig, NoiseConfig};
use cfdclean::model::diff::inaccuracy_ratio;
use cfdclean::repair::{repair_via_incremental, IncConfig};
use cfdclean::sampling::{certify, min_sample_for_acceptance, GroundTruthOracle, SamplingConfig};

fn main() {
    let epsilon = 0.002; // demanding bound on cell-level inaccuracy
    let delta = 0.90;

    let w = generate(&GenConfig::sized(4_000, 33));
    // Heavier, nastier noise than the defaults: typos only, which are the
    // hardest to repair exactly.
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.08,
            typo_prob: 0.9,
            ..Default::default()
        },
    );
    let mut db = noise.dirty.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(5);

    for round in 1.. {
        // Repair the current state.
        let out =
            repair_via_incremental(&db, &w.sigma, IncConfig::default()).expect("repair succeeds");
        let repair = out.repair;
        let true_ratio = inaccuracy_ratio(&repair, &w.dopt);
        // Certify on a sample, stratified by current violation counts.
        let report = detect(&db, &w.sigma);
        let mut oracle = GroundTruthOracle::new(&w.dopt);
        // size the sample so the test has power at this ε (plus headroom)
        let k = (min_sample_for_acceptance(epsilon, delta) * 2).min(repair.len());
        let config = SamplingConfig::new(epsilon, delta, k);
        let outcome = certify(&repair, |id| report.vio(id), &config, &mut oracle, &mut rng)
            .expect("sampling succeeds");
        println!(
            "round {round}: true inaccuracy {:.4}%, sample p̂ {:.4}%, {} corrections — {}",
            true_ratio * 100.0,
            outcome.p_hat * 100.0,
            outcome.corrections.len(),
            if outcome.accepted {
                "ACCEPTED"
            } else {
                "rejected"
            }
        );
        if outcome.accepted {
            println!("repair certified at ε = {epsilon}, δ = {delta} after {round} round(s)");
            break;
        }
        if round >= 10 {
            println!("stopping after 10 rounds (sample too small for ε this tight)");
            break;
        }
        // Fold the expert's corrections back in and go again.
        let mut corrected = repair;
        for (id, fixed) in outcome.corrections {
            let attrs: Vec<_> = corrected.schema().attr_ids().collect();
            for (a, v) in attrs.into_iter().zip(fixed) {
                corrected.set_value(id, a, v).expect("live tuple");
            }
        }
        db = corrected;
    }
}
