//! CFD discovery (the paper's future work, implemented): mine FDs and
//! constant pattern rows from clean order data, then show that the mined Σ
//! catches injected noise just like the hand-written one.
//!
//! Run with `cargo run --release --example discover_rules`.

use cfdclean::cfd::violation::{check, detect};
use cfdclean::cfd::Sigma;
use cfdclean::discovery::{discover, DiscoveryConfig};
use cfdclean::gen::{generate, inject, GenConfig, NoiseConfig};
use std::time::Instant;

fn main() {
    let w = generate(&GenConfig::sized(3_000, 17));
    let schema = w.dopt.schema().clone();

    let t0 = Instant::now();
    let config = DiscoveryConfig {
        max_lhs: 2,
        min_support: 4,
        min_conditional_coverage: 0.6,
    };
    let found = discover(&w.dopt, &config);
    println!(
        "discovered {} dependencies in {:?} ({} exact FDs, {} conditional)",
        found.len(),
        t0.elapsed(),
        found.iter().filter(|d| d.is_exact()).count(),
        found.iter().filter(|d| !d.is_exact()).count(),
    );
    for d in found.iter().take(12) {
        let lhs: Vec<&str> = d.lhs.iter().map(|a| schema.attr_name(*a)).collect();
        let kind = match &d.rows {
            None => "FD".to_string(),
            Some(rows) => format!("CFD, {} rows", rows.len()),
        };
        println!(
            "  [{}] -> {}  ({kind})",
            lhs.join(", "),
            schema.attr_name(d.rhs)
        );
    }

    // The mined rules hold on the training data…
    let cfds: Vec<_> = found
        .iter()
        .enumerate()
        .map(|(i, d)| d.to_cfd(&format!("mined{i}")))
        .collect();
    let mined_sigma = Sigma::normalize(schema, cfds).expect("mined CFDs normalize");
    assert!(check(&w.dopt, &mined_sigma), "mined Σ holds on clean data");

    // …and catch injected noise.
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let report = detect(&noise.dirty, &mined_sigma);
    let caught = noise
        .corrupted
        .iter()
        .filter(|(id, _)| report.vio(*id) > 0)
        .count();
    println!(
        "mined Σ catches {caught}/{} injected errors on the dirty data",
        noise.corrupted.len()
    );
}
