//! Demonstrates why free/free merges are priced by *group majority*
//! rather than pairwise (DESIGN.md §7 item 3).
//!
//! The workload seeds below contain "bridge" corruptions: a tuple whose
//! corrupted group key (street) parks it in a foreign group of the
//! variable CFD `[CT, STR] → zip`. Under the literal pairwise reading of
//! §4.1 the first merge between the bridge and the clean group is a coin
//! flip on two cell weights — and when the bridge wins, the grown class
//! beats each remaining group member one by one, snowballing the whole
//! group to the corrupted binding. Group-majority pricing asks the whole
//! group instead.
//!
//! Run with `cargo run --release --example merge_pricing_ablation`.

use cfdclean::gen::{generate, inject, GenConfig, NoiseConfig, RunSummary};
use cfdclean::repair::{batch_repair, BatchConfig, MergePricing};
use std::time::Instant;

fn main() {
    println!(
        "{:<10} {:>6} {:>16} {:>12} {:>10}",
        "seed", "mode", "precision", "recall", "time"
    );
    for noise_seed in [42u64, 1, 7] {
        let w = generate(&GenConfig::sized(6_000, 42));
        let noise = inject(
            &w.dopt,
            &w.world,
            &NoiseConfig {
                rate: 0.05,
                seed: noise_seed,
                ..Default::default()
            },
        );
        for pricing in [MergePricing::GroupMajority, MergePricing::Pairwise] {
            let config = BatchConfig {
                merge_pricing: pricing,
                ..Default::default()
            };
            let t0 = Instant::now();
            let out = batch_repair(&noise.dirty, &w.sigma, config).expect("repair succeeds");
            let q = RunSummary::evaluate(&noise.dirty, &out.repair, &w.dopt, t0.elapsed());
            println!(
                "{:<10} {:>6} {:>15.1}% {:>11.1}% {:>9.2?}",
                noise_seed,
                match pricing {
                    MergePricing::GroupMajority => "group",
                    MergePricing::Pairwise => "pair",
                },
                q.precision * 100.0,
                q.recall * 100.0,
                q.elapsed,
            );
        }
    }
    println!("\nPairwise pricing loses whole groups on bridge-corruption seeds;");
    println!("group-majority pricing is what BatchConfig::default() uses.");
}
