//! End-to-end data-cleaning pipeline on the paper's `order` workload:
//! the full framework of Fig. 3 — repairing module, then the sampling
//! module certifying accuracy against (ε, δ), with the ground-truth
//! oracle standing in for the domain expert.
//!
//! Run with `cargo run --release --example order_cleaning`.

use cfd_prng::ChaCha8Rng;
use cfd_prng::SeedableRng;
use cfdclean::cfd::violation::detect;
use cfdclean::gen::{generate, inject, GenConfig, NoiseConfig, RunSummary};
use cfdclean::model::TupleId;
use cfdclean::repair::{batch_repair, BatchConfig};
use cfdclean::sampling::{certify, chernoff_sample_size, GroundTruthOracle, SamplingConfig};
use std::time::Instant;

fn main() {
    let epsilon = 0.05; // tolerated inaccuracy rate
    let delta = 0.95; // confidence

    // 1. Generate the workload and corrupt it.
    let w = generate(&GenConfig::sized(5_000, 7));
    let noise = inject(
        &w.dopt,
        &w.world,
        &NoiseConfig {
            rate: 0.04,
            ..Default::default()
        },
    );
    println!(
        "order database: {} tuples, Σ = {} CFDs ({} normalized rules)",
        noise.dirty.len(),
        w.sigma.sources().len(),
        w.sigma.len()
    );

    // 2. Detect violations (the consistency diagnosis).
    let report = detect(&noise.dirty, &w.sigma);
    println!(
        "detected: {} tuples with violations, vio(D) = {}",
        report.dirty_tuples().len(),
        report.total
    );

    // 3. Repair (the repairing module).
    let t0 = Instant::now();
    let out =
        batch_repair(&noise.dirty, &w.sigma, BatchConfig::default()).expect("repair succeeds");
    let quality = RunSummary::evaluate(&noise.dirty, &out.repair, &w.dopt, t0.elapsed());
    println!("BATCHREPAIR: {quality}");

    // 4. Certify accuracy (the sampling module). The paper sizes samples
    //    with the Chernoff bound of Theorem 6.1.
    let k = chernoff_sample_size(5, epsilon, delta).min(out.repair.len());
    println!(
        "sampling {k} tuples (Chernoff bound for ≥5 expected errors at ε = {epsilon}, δ = {delta})"
    );
    let suspicion = |id: TupleId| report.vio(id);
    let mut oracle = GroundTruthOracle::new(&w.dopt);
    let config = SamplingConfig::new(epsilon, delta, k);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let outcome =
        certify(&out.repair, suspicion, &config, &mut oracle, &mut rng).expect("sampling succeeds");
    println!(
        "certification: p̂ = {:.4}, inspected {} tuples, {} corrections — {}",
        outcome.p_hat,
        outcome.inspected,
        outcome.corrections.len(),
        if outcome.accepted {
            "ACCEPTED"
        } else {
            "REJECTED — feed corrections back and re-repair"
        }
    );
}
