//! The incremental module (§5): a clean warehouse keeps receiving order
//! batches; each batch is repaired on arrival with `INCREPAIR` so the
//! database never goes inconsistent — and the clean base is never touched.
//!
//! Also demonstrates the CFD rule-file syntax: Σ is written out with the
//! parser's renderer and read back, as a user of the sampling loop would
//! edit it.
//!
//! Run with `cargo run --release --example incremental_inserts`.

use cfdclean::cfd::parser::{parse_rules, render_cfd};
use cfdclean::cfd::violation::check;
use cfdclean::cfd::Sigma;
use cfdclean::gen::{generate, inject, GenConfig, NoiseConfig};
use cfdclean::model::Tuple;
use cfdclean::repair::{inc_repair, IncConfig, Ordering};
use std::time::Instant;

fn main() {
    // A clean base of 4,000 orders.
    let w = generate(&GenConfig::sized(4_000, 21));
    assert!(check(&w.dopt, &w.sigma), "base must be clean");

    // Round-trip Σ through the textual rule format (truncated preview).
    let rendered = render_cfd(w.sigma.schema(), &w.sigma.sources()[1]);
    let preview: String = rendered.lines().take(4).collect::<Vec<_>>().join("\n");
    println!("ϕ2 in rule-file syntax (first rows):\n{preview}\n  …\n");
    let reparsed = parse_rules(w.sigma.schema(), &rendered).expect("round-trip parses");
    let _sigma2 = Sigma::normalize(w.sigma.schema().clone(), reparsed).expect("normalizes");

    // Three arriving batches with increasingly bad quality.
    let mut base = w.dopt.clone();
    for (batch_no, rate) in [(1, 0.2), (2, 0.5), (3, 1.0)] {
        let batch_src = generate(&GenConfig {
            n_tuples: 40,
            seed: 1000 + batch_no,
            world: w.world.config.clone(),
        });
        let noised = inject(
            &batch_src.dopt,
            &w.world,
            &NoiseConfig {
                rate,
                seed: batch_no,
                ..Default::default()
            },
        );
        let delta: Vec<Tuple> = noised.dirty.iter().map(|(_, t)| t.to_tuple()).collect();
        let t0 = Instant::now();
        let out = inc_repair(
            &base,
            &delta,
            &w.sigma,
            IncConfig {
                ordering: Ordering::Violations,
                ..Default::default()
            },
        )
        .expect("incremental repair succeeds");
        println!(
            "batch {batch_no}: {} inserts ({}% dirty) → {} modified, {} nulls, cost {:.2}, {:?}",
            delta.len(),
            (rate * 100.0) as u32,
            out.stats.modified,
            out.stats.nulls_introduced,
            out.stats.cost,
            t0.elapsed()
        );
        assert!(check(&out.repair, &w.sigma), "warehouse stays consistent");
        base = out.repair;
    }
    println!(
        "final warehouse size: {} tuples, still consistent",
        base.len()
    );
}
