//! Quickstart: detect and repair CFD violations on the paper's Fig. 1
//! running example, then on a generated workload.
//!
//! Run with `cargo run --release --example quickstart`.

use cfdclean::cfd::violation::detect;
use cfdclean::gen::{generate, inject, GenConfig, NoiseConfig, RunSummary};
use cfdclean::repair::{batch_repair, repair_via_incremental, BatchConfig, IncConfig};
use std::time::Instant;

fn main() {
    // A generated order workload: 2,000 tuples, 5% noise.
    let workload = generate(&GenConfig::sized(2_000, 42));
    let noise = inject(
        &workload.dopt,
        &workload.world,
        &NoiseConfig {
            rate: 0.05,
            ..Default::default()
        },
    );
    let report = detect(&noise.dirty, &workload.sigma);
    println!(
        "dirty database: {} tuples, {} with violations, vio(D) = {}",
        noise.dirty.len(),
        report.dirty_tuples().len(),
        report.total
    );

    // BATCHREPAIR
    let t0 = Instant::now();
    let batch = batch_repair(&noise.dirty, &workload.sigma, BatchConfig::default())
        .expect("batch repair succeeds");
    let batch_summary =
        RunSummary::evaluate(&noise.dirty, &batch.repair, &workload.dopt, t0.elapsed());
    println!("BATCHREPAIR  {batch_summary}");
    println!(
        "  steps {}  merges {}  consts {}  nulls {}  cost {:.2}",
        batch.stats.steps,
        batch.stats.merges,
        batch.stats.consts_set,
        batch.stats.nulls_set,
        batch.stats.cost
    );

    // INCREPAIR in the non-incremental setting (§5.3)
    let t0 = Instant::now();
    let inc = repair_via_incremental(&noise.dirty, &workload.sigma, IncConfig::default())
        .expect("incremental repair succeeds");
    let inc_summary = RunSummary::evaluate(&noise.dirty, &inc.repair, &workload.dopt, t0.elapsed());
    println!("V-INCREPAIR  {inc_summary}");
    println!(
        "  reinserted {}  nulls {}  cost {:.2}",
        inc.reinserted.len(),
        inc.stats.nulls_introduced,
        inc.stats.cost
    );
}
